//! Gateway-level metrics: HTTP requests, bytes, and status classes.
//!
//! These describe the *network boundary* — what crossed the wire — while
//! `bcpnn_serve`'s metrics describe the scheduler behind it. The two are
//! rendered into one `/metrics` exposition, under disjoint name prefixes
//! (`bcpnn_gateway_*` vs `bcpnn_serve_*`), so the combined scrape keeps
//! the one-declaration-per-metric invariant the serve-side validity
//! parser enforces and nothing is ever double-counted between layers: a
//! predict request increments `bcpnn_gateway_requests_total` exactly once
//! and `bcpnn_serve_requests_total` once *per row* it carries.
//!
//! Like [`bcpnn_serve::ServingMetrics`], everything is relaxed atomics:
//! one `fetch_add` per event on the hot path.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free gateway counters, shared by the connection workers.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Connections the gateway answered: served requests (parseable or
    /// not) *plus* connections shed with 503 by the accept thread, which
    /// never produced a request line. Always equals the sum over
    /// `responses_total` classes.
    requests: AtomicU64,
    /// Responses with a 2xx status.
    status_2xx: AtomicU64,
    /// Responses with a 4xx status.
    status_4xx: AtomicU64,
    /// Responses with a 5xx status.
    status_5xx: AtomicU64,
    /// Request body bytes read.
    bytes_in: AtomicU64,
    /// Response bytes written (head + body).
    bytes_out: AtomicU64,
    /// Feature rows submitted to the serving stack via predict requests.
    predict_rows: AtomicU64,
    /// Connections rejected with 503 because the accept queue was full.
    rejected_busy: AtomicU64,
}

impl GatewayMetrics {
    /// Create zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one served connection/request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a response by its status code's class.
    pub fn record_status(&self, status: u16) {
        let counter = match status / 100 {
            2 => &self.status_2xx,
            4 => &self.status_4xx,
            _ => &self.status_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count request body bytes read off the wire.
    pub fn record_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Count response bytes written to the wire.
    pub fn record_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Count feature rows handed to the serving stack.
    pub fn record_predict_rows(&self, n: u64) {
        self.predict_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Count a connection turned away because the accept queue was full.
    pub fn record_rejected_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> GatewaySnapshot {
        GatewaySnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            status_2xx: self.status_2xx.load(Ordering::Relaxed),
            status_4xx: self.status_4xx.load(Ordering::Relaxed),
            status_5xx: self.status_5xx.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            predict_rows: self.predict_rows.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the gateway counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewaySnapshot {
    /// Connections answered (served requests + load-shed 503s).
    pub requests: u64,
    /// 2xx responses.
    pub status_2xx: u64,
    /// 4xx responses.
    pub status_4xx: u64,
    /// 5xx responses.
    pub status_5xx: u64,
    /// Request body bytes read.
    pub bytes_in: u64,
    /// Response bytes written.
    pub bytes_out: u64,
    /// Feature rows submitted through predict requests.
    pub predict_rows: u64,
    /// Connections rejected because the accept queue was full.
    pub rejected_busy: u64,
}

impl GatewaySnapshot {
    /// Render the gateway counters in Prometheus text exposition format.
    /// Status classes share one metric name with a `class` label; all
    /// names live under `bcpnn_gateway_`, disjoint from the serve-side
    /// export this text is concatenated with.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let simple: [(&str, &str, u64); 5] = [
            (
                "requests",
                "Connections answered by the gateway (incl. load-shed 503s).",
                self.requests,
            ),
            (
                "request_bytes",
                "Request body bytes read off the wire.",
                self.bytes_in,
            ),
            (
                "response_bytes",
                "Response bytes (head + body) written to the wire.",
                self.bytes_out,
            ),
            (
                "predict_rows",
                "Feature rows submitted to the serving stack.",
                self.predict_rows,
            ),
            (
                "rejected_busy",
                "Connections rejected because the accept queue was full.",
                self.rejected_busy,
            ),
        ];
        for (name, help, value) in simple {
            let full = format!("bcpnn_gateway_{name}_total");
            let _ = writeln!(out, "# HELP {full} {help}");
            let _ = writeln!(out, "# TYPE {full} counter");
            let _ = writeln!(out, "{full} {value}");
        }
        let _ = writeln!(
            out,
            "# HELP bcpnn_gateway_responses_total Responses by status class."
        );
        let _ = writeln!(out, "# TYPE bcpnn_gateway_responses_total counter");
        for (class, value) in [
            ("2xx", self.status_2xx),
            ("4xx", self.status_4xx),
            ("5xx", self.status_5xx),
        ] {
            let _ = writeln!(
                out,
                "bcpnn_gateway_responses_total{{class=\"{class}\"}} {value}"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = GatewayMetrics::new();
        m.record_request();
        m.record_request();
        m.record_status(200);
        m.record_status(404);
        m.record_status(503);
        m.record_bytes_in(100);
        m.record_bytes_out(250);
        m.record_predict_rows(32);
        m.record_rejected_busy();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.status_2xx, 1);
        assert_eq!(s.status_4xx, 1);
        assert_eq!(s.status_5xx, 1);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.bytes_out, 250);
        assert_eq!(s.predict_rows, 32);
        assert_eq!(s.rejected_busy, 1);
    }

    #[test]
    fn prometheus_export_is_valid_and_disjoint_from_serve_names() {
        let m = GatewayMetrics::new();
        m.record_request();
        m.record_status(200);
        m.record_bytes_out(10);
        let text = m.snapshot().to_prometheus();
        // The gateway text must stay valid when concatenated after the
        // serve-side exposition: every metric name disjoint (no duplicate
        // HELP/TYPE) and prefixed bcpnn_gateway_.
        bcpnn_serve::validate_prometheus(&text).expect("gateway exposition is valid");
        for line in text.lines().filter(|l| !l.is_empty()) {
            let name = line
                .trim_start_matches("# HELP ")
                .trim_start_matches("# TYPE ");
            assert!(
                name.starts_with("bcpnn_gateway_"),
                "metric outside the gateway namespace: {line:?}"
            );
        }
        assert!(text.contains("bcpnn_gateway_requests_total 1"));
        assert!(text.contains("bcpnn_gateway_responses_total{class=\"2xx\"} 1"));
        // Combined with a serve-side exposition the declarations stay
        // unique — this is the no-double-declaration audit for /metrics.
        let serve = bcpnn_serve::ServingMetrics::new()
            .snapshot()
            .to_prometheus();
        bcpnn_serve::validate_prometheus(&format!("{serve}{text}"))
            .expect("combined exposition is valid");
    }
}
