//! Artifact-path allowlisting for the publish endpoints.
//!
//! `PUT /v1/models/{name}` (and the cluster's interior `Publish` frame)
//! name a filesystem path the serving host should load. Unrestricted,
//! that lets any client with publish access probe or load arbitrary
//! host paths. When an artifact root is configured, [`path_allowed`]
//! admits only paths that resolve inside it — symlinks and `..` segments
//! included, because the check runs on the *canonicalized* path whenever
//! the candidate exists.

use std::path::{Component, Path};

/// Whether `candidate` is inside the allowlisted `root`.
///
/// * An existing candidate is canonicalized, so a symlink pointing out of
///   the root, or a `root/../etc` traversal, is rejected on its real
///   location.
/// * A nonexistent candidate cannot be canonicalized; it is admitted only
///   if it contains no `..` components and starts with the root (checked
///   against both the spelled and the canonical root). The subsequent
///   artifact load then fails with the load error (422), which
///   deliberately does not reveal whether paths *outside* the root exist.
/// * An unresolvable root rejects everything: a misconfigured allowlist
///   fails closed.
pub fn path_allowed(root: &Path, candidate: &Path) -> bool {
    let Ok(canonical_root) = root.canonicalize() else {
        return false;
    };
    match candidate.canonicalize() {
        Ok(resolved) => resolved.starts_with(&canonical_root),
        Err(_) => {
            if candidate
                .components()
                .any(|c| matches!(c, Component::ParentDir))
            {
                return false;
            }
            candidate.starts_with(root) || candidate.starts_with(&canonical_root)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bcpnn-artifact-allowlist-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn paths_inside_the_root_are_allowed() {
        let root = scratch_root("inside");
        let model = root.join("higgs-v1");
        std::fs::create_dir_all(&model).unwrap();
        assert!(path_allowed(&root, &model));
        // Nonexistent-but-inside: allowed through to the loader's 422.
        assert!(path_allowed(&root, &root.join("not-written-yet")));
    }

    #[test]
    fn paths_outside_the_root_are_rejected() {
        let root = scratch_root("outside");
        assert!(!path_allowed(&root, Path::new("/etc/passwd")));
        assert!(!path_allowed(&root, Path::new("/definitely/not/a/model")));
        // Traversal back out of the root, existing or not.
        assert!(!path_allowed(&root, &root.join("../somewhere-else")));
        assert!(!path_allowed(&root, &root.join("a/../../b")));
    }

    #[test]
    fn symlinks_cannot_escape_the_root() {
        let root = scratch_root("symlink");
        let outside = scratch_root("symlink-target");
        let link = root.join("sneaky");
        let _ = std::fs::remove_file(&link);
        std::os::unix::fs::symlink(&outside, &link).unwrap();
        assert!(
            !path_allowed(&root, &link),
            "a symlink inside the root resolving outside it must be rejected"
        );
    }

    #[test]
    fn a_missing_root_fails_closed() {
        let root = Path::new("/no/such/allowlist/root");
        assert!(!path_allowed(
            root,
            Path::new("/no/such/allowlist/root/model")
        ));
    }
}
