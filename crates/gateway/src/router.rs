//! Route table: `(method, path)` → endpoint.
//!
//! The surface is small enough that an explicit match beats a generic
//! framework: six endpoints, each with a fixed shape. Unknown paths are
//! 404 and known paths with the wrong method are 405 (with the allowed
//! methods named), decided *before* any body parsing — a misrouted
//! request never costs worker time.

/// One resolved endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` — liveness probe.
    Healthz,
    /// `GET /metrics` — Prometheus scrape of serving + gateway metrics.
    Metrics,
    /// `GET /v1/models` — registry listing with versions.
    ListModels,
    /// `POST /v1/models/{name}/predict` — micro-batched inference.
    Predict(String),
    /// `PUT /v1/models/{name}` — hot-swap a persisted artifact.
    Publish(String),
    /// `POST /v1/models/{name}/learn` — feed labeled rows to the model's
    /// online learner.
    Learn(String),
}

/// Why routing failed; carries what the server needs for the response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No endpoint lives at this path.
    NotFound,
    /// The path exists but not under this method; names the methods that
    /// are allowed (the `Allow` header value).
    MethodNotAllowed(&'static str),
    /// The model name segment is empty or contains invalid characters.
    BadModelName(String),
}

/// Model names accepted on the wire: non-empty, ASCII alphanumerics plus
/// `-`, `_`, and `.` — names that are unambiguous inside a path segment
/// and a Prometheus label.
fn valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

/// Resolve a request line to an endpoint.
pub fn route(method: &str, path: &str) -> Result<Route, RouteError> {
    match path {
        "/healthz" => {
            return match method {
                "GET" => Ok(Route::Healthz),
                _ => Err(RouteError::MethodNotAllowed("GET")),
            }
        }
        "/metrics" => {
            return match method {
                "GET" => Ok(Route::Metrics),
                _ => Err(RouteError::MethodNotAllowed("GET")),
            }
        }
        "/v1/models" => {
            return match method {
                "GET" => Ok(Route::ListModels),
                _ => Err(RouteError::MethodNotAllowed("GET")),
            }
        }
        _ => {}
    }
    if let Some(rest) = path.strip_prefix("/v1/models/") {
        let mut segments = rest.split('/');
        let name = segments.next().unwrap_or("");
        match (segments.next(), segments.next()) {
            // /v1/models/{name}
            (None, _) => {
                check_name(name)?;
                match method {
                    "PUT" => Ok(Route::Publish(name.to_string())),
                    _ => Err(RouteError::MethodNotAllowed("PUT")),
                }
            }
            // /v1/models/{name}/predict
            (Some("predict"), None) => {
                check_name(name)?;
                match method {
                    "POST" => Ok(Route::Predict(name.to_string())),
                    _ => Err(RouteError::MethodNotAllowed("POST")),
                }
            }
            // /v1/models/{name}/learn
            (Some("learn"), None) => {
                check_name(name)?;
                match method {
                    "POST" => Ok(Route::Learn(name.to_string())),
                    _ => Err(RouteError::MethodNotAllowed("POST")),
                }
            }
            _ => Err(RouteError::NotFound),
        }
    } else {
        Err(RouteError::NotFound)
    }
}

fn check_name(name: &str) -> Result<(), RouteError> {
    if valid_model_name(name) {
        Ok(())
    } else {
        Err(RouteError::BadModelName(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_routes_resolve() {
        assert_eq!(route("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route("GET", "/metrics"), Ok(Route::Metrics));
        assert_eq!(route("GET", "/v1/models"), Ok(Route::ListModels));
    }

    #[test]
    fn model_routes_capture_the_name() {
        assert_eq!(
            route("POST", "/v1/models/higgs/predict"),
            Ok(Route::Predict("higgs".into()))
        );
        assert_eq!(
            route("PUT", "/v1/models/higgs-v2.1"),
            Ok(Route::Publish("higgs-v2.1".into()))
        );
        assert_eq!(
            route("POST", "/v1/models/higgs/learn"),
            Ok(Route::Learn("higgs".into()))
        );
        assert_eq!(
            route("GET", "/v1/models/higgs/learn"),
            Err(RouteError::MethodNotAllowed("POST"))
        );
    }

    #[test]
    fn wrong_methods_name_the_allowed_one() {
        assert_eq!(
            route("POST", "/healthz"),
            Err(RouteError::MethodNotAllowed("GET"))
        );
        assert_eq!(
            route("GET", "/v1/models/higgs/predict"),
            Err(RouteError::MethodNotAllowed("POST"))
        );
        assert_eq!(
            route("DELETE", "/v1/models/higgs"),
            Err(RouteError::MethodNotAllowed("PUT"))
        );
    }

    #[test]
    fn unknown_paths_are_not_found() {
        for path in [
            "/",
            "/v1",
            "/v1/models/",
            "/v1/models/higgs/predict/extra",
            "/v1/models/higgs/nope",
            "/metricsx",
        ] {
            let got = route("GET", path);
            assert!(
                matches!(
                    got,
                    Err(RouteError::NotFound) | Err(RouteError::BadModelName(_))
                ),
                "{path:?} resolved to {got:?}"
            );
        }
    }

    #[test]
    fn hostile_model_names_are_rejected() {
        for name in ["", "a b", "a\"b", "héggs", &"x".repeat(200)] {
            let path = format!("/v1/models/{name}/predict");
            let got = route("POST", &path);
            assert!(
                matches!(
                    got,
                    Err(RouteError::BadModelName(_)) | Err(RouteError::NotFound)
                ),
                "{name:?} resolved to {got:?}"
            );
        }
    }
}
