//! A small hand-rolled JSON module.
//!
//! The build is offline (no serde), and the gateway's wire format is
//! deliberately tiny — arrays of numbers in, objects of numbers/strings
//! out — so this module implements exactly RFC 8259 with two deliberate
//! properties the gateway relies on:
//!
//! * **Numbers keep their raw token.** [`Number`] stores the untouched
//!   source text and converts on demand ([`Number::as_f32`] calls
//!   `f32::from_str` on the original token), so an `f32` serialized with
//!   Rust's shortest-round-trip `Display` parses back to the *identical
//!   bit pattern* — never routed through `f64` where double rounding could
//!   perturb the last ulp. The gateway's "HTTP predict == in-process
//!   predict bit-for-bit" guarantee rests on this.
//! * **Bounded recursion.** Parsing depth is capped ([`MAX_DEPTH`]) so a
//!   hostile `[[[[...` body fails with a parse error instead of blowing
//!   the worker's stack.
//!
//! Object keys keep insertion order (a `Vec` of pairs, not a map): output
//! is deterministic and duplicate keys are a parse error.

use std::fmt;
use std::str::FromStr;

/// Maximum nesting depth the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A JSON number, stored as its raw source token.
///
/// Conversions parse the original text directly into the requested type,
/// so `f32 → JSON → f32` is bit-exact and integers up to `u64::MAX` are
/// not squeezed through `f64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Number(String);

impl Number {
    /// Wrap a finite `f32` (shortest round-trip decimal form).
    pub fn from_f32(value: f32) -> Option<Number> {
        value.is_finite().then(|| Number(format!("{value}")))
    }

    /// Wrap a finite `f64` (shortest round-trip decimal form).
    pub fn from_f64(value: f64) -> Option<Number> {
        value.is_finite().then(|| Number(format!("{value}")))
    }

    /// Wrap an unsigned integer.
    pub fn from_u64(value: u64) -> Number {
        Number(value.to_string())
    }

    /// The number as `f32`, parsed from the raw token (exact round trip
    /// for tokens produced by `f32`'s `Display`).
    pub fn as_f32(&self) -> Option<f32> {
        f32::from_str(&self.0).ok().filter(|v| v.is_finite())
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        f64::from_str(&self.0).ok().filter(|v| v.is_finite())
    }

    /// The number as `u64`, if it is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        u64::from_str(&self.0).ok()
    }

    /// The raw source token.
    pub fn raw(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (raw token preserved; see [`Number`]).
    Num(Number),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys rejected at parse time.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number from a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(Number::from_u64(v))
    }

    /// Build a number from an `f32` (`null` for non-finite values, which
    /// JSON cannot represent).
    pub fn f32(v: f32) -> Json {
        Number::from_f32(v).map_or(Json::Null, Json::Num)
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n.raw()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Parse a request body that must be a JSON array of equal-length arrays
/// of finite numbers — the predict endpoint's rows. Numbers are parsed
/// directly to `f32` (no `f64` detour), empty bodies and ragged or empty
/// rows are rejected.
pub fn parse_f32_rows(input: &str) -> Result<Vec<Vec<f32>>, ParseError> {
    let doc = parse(input)?;
    let outer = doc.as_array().ok_or_else(|| ParseError {
        message: "expected a JSON array of feature rows".into(),
        offset: 0,
    })?;
    if outer.is_empty() {
        return Err(ParseError {
            message: "the rows array is empty".into(),
            offset: 0,
        });
    }
    let mut rows = Vec::with_capacity(outer.len());
    let mut width = None;
    for (r, row) in outer.iter().enumerate() {
        let items = row.as_array().ok_or_else(|| ParseError {
            message: format!("row {r} is not an array"),
            offset: 0,
        })?;
        match width {
            None => width = Some(items.len()),
            Some(w) if w != items.len() => {
                return Err(ParseError {
                    message: format!("row {r} has {} features but row 0 has {w}", items.len()),
                    offset: 0,
                })
            }
            Some(_) => {}
        }
        if items.is_empty() {
            return Err(ParseError {
                message: format!("row {r} is empty"),
                offset: 0,
            });
        }
        let mut features = Vec::with_capacity(items.len());
        for (c, item) in items.iter().enumerate() {
            let value = match item {
                Json::Num(n) => n.as_f32(),
                _ => None,
            };
            features.push(value.ok_or_else(|| ParseError {
                message: format!("row {r} column {c} is not a finite number"),
                offset: 0,
            })?);
        }
        rows.push(features);
    }
    Ok(rows)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {text:?}")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (no escape, no quote, no
            // control characters).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came from a &str) and this
                // run contains no escape bytes, so it maps through as-is.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: must be followed by \uDC00..\uDFFF.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    self.pos += 1;
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(unit).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(ch);
            }
            other => return Err(self.err(format!("unknown escape \\{}", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            self.digits();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(Json::Num(Number(raw.to_string())))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": "x"}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"abc",
            "[1] x",
            "{\"a\":1,\"a\":2}",
            "\"\\q\"",
            "+1",
            "--1",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "unpaired low surrogate");
    }

    #[test]
    fn f32_round_trips_bit_exactly() {
        // Values chosen to stress the shortest-representation printer; a
        // detour through f64 would not necessarily preserve these bits.
        let values = [
            0.1f32,
            std::f32::consts::PI,
            f32::MIN_POSITIVE,
            1.000_000_1,
            16_777_217.0, // 2^24 + 1: not representable, rounds
            -0.000_123_456_7,
            f32::MAX,
        ];
        for &v in &values {
            let json = Json::f32(v).render();
            let back = match parse(&json).unwrap() {
                Json::Num(n) => n.as_f32().unwrap(),
                other => panic!("expected number, got {other:?}"),
            };
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} via {json}");
        }
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::f32(f32::NAN).render(), "null");
        assert_eq!(Json::f32(f32::INFINITY).render(), "null");
    }

    #[test]
    fn render_escapes_and_orders_deterministically() {
        let doc = Json::Obj(vec![
            ("q\"uote".into(), Json::str("line\nbreak")),
            ("n".into(), Json::u64(7)),
        ]);
        assert_eq!(doc.render(), "{\"q\\\"uote\":\"line\\nbreak\",\"n\":7}");
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn rows_parser_enforces_rectangular_finite_input() {
        assert_eq!(
            parse_f32_rows("[[1, 2.5], [3, 4]]").unwrap(),
            vec![vec![1.0, 2.5], vec![3.0, 4.0]]
        );
        for bad in [
            "[]",               // no rows
            "[[]]",             // empty row
            "[[1,2],[3]]",      // ragged
            "[[1,\"x\"]]",      // non-number
            "[1,2]",            // not nested
            "{\"rows\":[[1]]}", // object, not array
            "[[1e999]]",        // overflows to infinity
        ] {
            assert!(parse_f32_rows(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn number_accessors_distinguish_kinds() {
        let n = Number("18446744073709551615".into()); // u64::MAX
        assert_eq!(n.as_u64(), Some(u64::MAX));
        let f = Number("2.5".into());
        assert_eq!(f.as_u64(), None);
        assert_eq!(f.as_f64(), Some(2.5));
    }
}
