//! A minimal blocking HTTP/1.1 client — just enough to talk to the
//! gateway from tests, the example walkthrough, and the demo binary's
//! self-test, without external tooling. One request per connection,
//! mirroring the server's `Connection: close` policy.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Send one HTTP/1.1 request and read the full response. `headers` are
/// extra request headers beyond `Host`, `Content-Length`, and
/// `Connection: close`, which are always set.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    // The body write may fail mid-stream when the server rejects early
    // (e.g. 413 from the Content-Length alone) and closes its read side;
    // like curl, keep going and read whatever response made it back.
    let write_failed = stream
        .write_all(body)
        .and_then(|()| stream.flush())
        .is_err();

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            // A reset after a partial response still leaves the partial
            // bytes; stop reading and try to parse them.
            Err(_) if !raw.is_empty() => break,
            Err(e) if write_failed => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("request body write failed and no response arrived: {e}"),
                ))
            }
            Err(e) => return Err(e),
        }
    }
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    // "HTTP/1.1 200 OK"
    let status = status_line.split(' ').nth(1)?.parse::<u16>().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let body = raw[head_end + 4..].to_vec();
    // A timeout or reset mid-body leaves fewer bytes than the server
    // declared; reject that as malformed rather than handing back a
    // truncated body as if it were the complete response.
    if let Some((_, declared)) = headers.iter().find(|(k, _)| k == "content-length") {
        if declared.parse::<usize>().ok() != Some(body.len()) {
            return None;
        }
    }
    Some(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 404 Not Found\r\ncontent-type: application/json\r\n\r\n{\"e\":1}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.body_str(), "{\"e\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_none());
    }

    #[test]
    fn rejects_truncated_bodies() {
        // Declared 20 bytes, only 7 arrived (timeout/reset mid-body).
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 20\r\n\r\n{\"ok\":1";
        assert!(parse_response(raw).is_none());
        // Exact length still parses.
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 7\r\n\r\n{\"ok\":1";
        assert_eq!(parse_response(raw).unwrap().body_str(), "{\"ok\":1");
    }
}
