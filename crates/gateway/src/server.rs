//! The gateway server: a bounded accept/worker thread pool over
//! `std::net::TcpListener`, feeding the in-process serving stack.
//!
//! One *accept* thread pulls connections off the listener and pushes them
//! onto a bounded queue; when the queue is full the connection is answered
//! `503` immediately (load shedding at the edge, before any parsing).
//! `workers` *connection* threads pop, parse one HTTP request each
//! ([`crate::http`]), route it ([`crate::router`]), and run the endpoint.
//!
//! The predict path preserves the serving stack's micro-batching: every
//! row of every in-flight HTTP request is submitted individually to the
//! shared [`ServeTarget`], so the collector coalesces rows *across
//! connections* into vectorized batches exactly as in-process callers do.
//! [`SubmitOptions`] thread through headers: `X-Priority:
//! high|normal|low`, `X-Deadline-Ms: <millis>`, and
//! `X-Abstain-Below: <margin in [0,1]>` (low-confidence rows come back
//! abstained instead of answered).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bcpnn_backend::BackendKind;
use bcpnn_learn::{LearnError, OnlineLearner};
use bcpnn_serve::{Pipeline, Priority, ServeTarget, ServedModel, SubmitOptions};

use crate::error::ApiError;
use crate::http::{read_request, Limits, Request, Response};
use crate::json::{self, Json};
use crate::metrics::{GatewayMetrics, GatewaySnapshot};
use crate::router::{route, Route, RouteError};

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port; read the
    /// result from [`Gateway::local_addr`]).
    pub addr: String,
    /// Connection worker threads (each serves one request at a time).
    pub workers: usize,
    /// Bounded queue of accepted, not-yet-served connections; connections
    /// beyond it are answered `503` immediately.
    pub max_pending: usize,
    /// Request head/body byte ceilings.
    pub limits: Limits,
    /// Socket read timeout while parsing a request.
    pub read_timeout: Duration,
    /// Allowlisted root for `PUT /v1/models/{name}` artifact paths: when
    /// set, publish requests naming a path that resolves outside this
    /// directory are answered `403` without touching the filesystem
    /// entry. `None` (the default) keeps the historical allow-anything
    /// behavior for trusted single-host deployments.
    pub artifact_root: Option<std::path::PathBuf>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_pending: 64,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
            artifact_root: None,
        }
    }
}

/// Bounded MPMC queue of accepted connections (std `Mutex` + `Condvar`;
/// the gateway stays dependency-free).
struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    queue: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a connection; hands it back when the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.queue.len() >= self.capacity {
            return Err(stream);
        }
        state.queue.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue, blocking; `None` once the queue is closed *and* drained,
    /// so queued connections are still served through shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(stream) = state.queue.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// State shared by the accept thread and the connection workers.
struct Shared {
    target: Arc<dyn ServeTarget>,
    metrics: GatewayMetrics,
    queue: ConnQueue,
    limits: Limits,
    read_timeout: Duration,
    artifact_root: Option<std::path::PathBuf>,
    /// Online learners behind `POST /v1/models/{name}/learn`, keyed by the
    /// registry model name each one feeds.
    learners: Vec<Arc<OnlineLearner>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn learner(&self, model: &str) -> Option<&Arc<OnlineLearner>> {
        self.learners.iter().find(|l| l.model() == model)
    }
}

/// The running HTTP gateway. Dropping it shuts the listener down
/// gracefully: queued connections are served, then the threads join.
pub struct Gateway {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Bind `config.addr` and start the accept + worker threads over
    /// `target` (an [`bcpnn_serve::InferenceServer`] or
    /// [`bcpnn_serve::ShardedServer`], shared as a trait object).
    pub fn start(target: Arc<dyn ServeTarget>, config: GatewayConfig) -> std::io::Result<Gateway> {
        Self::start_with_learners(target, config, Vec::new())
    }

    /// [`Gateway::start`], plus online learners: each learner serves
    /// `POST /v1/models/{name}/learn` for its model, and its
    /// `bcpnn_learn_*` metrics join the `/metrics` scrape. Models without
    /// a learner answer 404 on the learn endpoint.
    pub fn start_with_learners(
        target: Arc<dyn ServeTarget>,
        config: GatewayConfig,
        learners: Vec<Arc<OnlineLearner>>,
    ) -> std::io::Result<Gateway> {
        assert!(config.workers > 0, "need at least one connection worker");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            target,
            metrics: GatewayMetrics::new(),
            queue: ConnQueue::new(config.max_pending),
            limits: config.limits,
            read_timeout: config.read_timeout,
            artifact_root: config.artifact_root,
            learners,
            shutdown: AtomicBool::new(false),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bcpnn-gateway-accept".into())
                .spawn(move || run_accept(&listener, &shared))
                .expect("failed to spawn gateway accept thread")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bcpnn-gateway-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = shared.queue.pop() {
                            handle_connection(&shared, stream);
                        }
                    })
                    .expect("failed to spawn gateway worker thread")
            })
            .collect();

        Ok(Gateway {
            local_addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The address the gateway actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time copy of the gateway-level counters (the serving
    /// stack's own metrics live on the target).
    #[must_use]
    pub fn metrics(&self) -> GatewaySnapshot {
        self.shared.metrics.snapshot()
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag after every accept (and after every accept *error*, so
        // even a failed wake-up is only a backoff interval away from being
        // noticed). Connect to loopback when bound to a wildcard address —
        // connecting to 0.0.0.0 is not universally routable to self.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let woke = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1)).is_ok();
        if let Some(accept) = self.accept.take() {
            if woke {
                let _ = accept.join();
            }
            // If the wake-up connection failed (fd exhaustion, odd
            // platform), detach the accept thread rather than hanging the
            // dropping thread: it exits at its next accept/error cycle.
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn run_accept(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Listener-level errors (EMFILE and friends): back off briefly
            // instead of spinning a core exactly when the process is
            // already resource-starved, then retry unless shutting down.
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Err(mut rejected) = shared.queue.push(stream) {
            // Shed load at the edge: a full queue answers 503 from the
            // accept thread without reading the request. The short write
            // timeout keeps a non-reading client from stalling accepts.
            let _ = rejected.set_write_timeout(Some(Duration::from_secs(1)));
            shared.metrics.record_request();
            shared.metrics.record_rejected_busy();
            shared.metrics.record_status(503);
            let response =
                ApiError::new(503, "gateway accept queue is full; retry later").into_response();
            if let Ok(n) = response.write_to(&mut rejected) {
                shared.metrics.record_bytes_out(n);
            }
        }
    }
}

/// Serve exactly one request on `stream` and close it.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    // A write timeout too: a client that never reads its response must
    // not wedge this worker in write_all forever.
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    shared.metrics.record_request();
    let response = match read_request(&mut stream, shared.limits) {
        Ok(request) => {
            shared.metrics.record_bytes_in(request.body.len() as u64);
            dispatch(shared, &request)
        }
        Err(err) => ApiError::new(err.status(), err.message()).into_response(),
    };
    shared.metrics.record_status(response.status);
    if let Ok(n) = response.write_to(&mut stream) {
        shared.metrics.record_bytes_out(n);
    }
}

/// Route and run one parsed request.
fn dispatch(shared: &Shared, request: &Request) -> Response {
    let endpoint = match route(&request.method, &request.path) {
        Ok(endpoint) => endpoint,
        Err(RouteError::NotFound) => {
            return ApiError::new(404, format!("no endpoint at {:?}", request.path)).into_response()
        }
        Err(RouteError::MethodNotAllowed(allow)) => {
            let mut err = ApiError::new(
                405,
                format!("{} is not allowed here (allow: {allow})", request.method),
            );
            err.allow = Some(allow);
            return err.into_response();
        }
        Err(RouteError::BadModelName(name)) => {
            return ApiError::new(400, format!("invalid model name {name:?}")).into_response()
        }
    };
    match endpoint {
        Route::Healthz => Response::json(200, "{\"status\":\"ok\"}".to_string()),
        Route::Metrics => handle_metrics(shared),
        Route::ListModels => handle_list_models(shared),
        Route::Predict(name) => {
            handle_predict(shared, &name, request).unwrap_or_else(ApiError::into_response)
        }
        Route::Publish(name) => {
            handle_publish(shared, &name, request).unwrap_or_else(ApiError::into_response)
        }
        Route::Learn(name) => {
            handle_learn(shared, &name, request).unwrap_or_else(ApiError::into_response)
        }
    }
}

/// `GET /metrics`: the serving stack's exposition (per-shard + aggregate)
/// followed by the gateway's own counters — disjoint metric names, so the
/// combined text stays a valid single scrape.
fn handle_metrics(shared: &Shared) -> Response {
    let mut text = shared.target.to_prometheus();
    text.push_str(&shared.metrics.snapshot().to_prometheus());
    if !shared.learners.is_empty() {
        let snapshots: Vec<(&str, bcpnn_learn::LearnSnapshot)> = shared
            .learners
            .iter()
            .map(|l| (l.model(), l.metrics()))
            .collect();
        text.push_str(&bcpnn_learn::prometheus_exposition(&snapshots));
    }
    Response::text_with_type(200, "text/plain; version=0.0.4; charset=utf-8", text)
}

/// `GET /v1/models`: registry listing with versions and shapes.
fn handle_list_models(shared: &Shared) -> Response {
    let registry = shared.target.registry();
    let models: Vec<Json> = registry
        .model_names()
        .into_iter()
        .filter_map(|name| registry.lookup(&name))
        .map(|model| {
            Json::Obj(vec![
                ("name".into(), Json::str(model.name())),
                ("version".into(), Json::u64(model.version())),
                (
                    "n_inputs".into(),
                    Json::u64(model.predictor().n_inputs() as u64),
                ),
                (
                    "n_classes".into(),
                    Json::u64(model.predictor().n_classes() as u64),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        Json::Obj(vec![("models".into(), Json::Arr(models))]).render(),
    )
}

/// Parse `X-Priority` / `X-Deadline-Ms` / `X-Abstain-Below` into
/// [`SubmitOptions`]. Malformed headers are rejected with `400` here,
/// before any row is submitted — a bad threshold never costs a forward
/// pass.
fn options_from_headers(request: &Request) -> Result<SubmitOptions, ApiError> {
    let mut options = SubmitOptions::new();
    if let Some(priority) = request.header("x-priority") {
        options = options.priority(match priority.to_ascii_lowercase().as_str() {
            "high" => Priority::High,
            "normal" => Priority::Normal,
            "low" => Priority::Low,
            other => {
                return Err(ApiError::new(
                    400,
                    format!("invalid X-Priority {other:?} (use high, normal, or low)"),
                ))
            }
        });
    }
    if let Some(deadline) = request.header("x-deadline-ms") {
        let millis: u64 = deadline.parse().map_err(|_| {
            ApiError::new(
                400,
                format!("invalid X-Deadline-Ms {deadline:?} (use integer milliseconds)"),
            )
        })?;
        options = options.deadline(Duration::from_millis(millis));
    }
    if let Some(threshold) = request.header("x-abstain-below") {
        let parsed: f32 = threshold.trim().parse().map_err(|_| {
            ApiError::new(
                400,
                format!("invalid X-Abstain-Below {threshold:?} (use a number in [0, 1])"),
            )
        })?;
        if !parsed.is_finite() || !(0.0..=1.0).contains(&parsed) {
            return Err(ApiError::new(
                400,
                format!("invalid X-Abstain-Below {threshold:?} (must be finite and in [0, 1])"),
            ));
        }
        options = options.abstain_below(parsed);
    }
    Ok(options)
}

/// `POST /v1/models/{name}/predict`: JSON rows in, probabilities out.
///
/// All rows are submitted before any is waited on, so one HTTP request's
/// rows — and rows from concurrent connections — coalesce into the
/// serving stack's micro-batches.
///
/// Swap semantics: each *batch* resolves the model version at dispatch,
/// so every row is served by one consistent model, but the rows of a
/// multi-row request batch independently — a request straddling a
/// hot-swap may get some rows from the old version and some from the
/// new. The response's `version` field is likewise advisory: the current
/// version at accept time. Clients that need version-atomic responses
/// send one row per request.
fn handle_predict(shared: &Shared, name: &str, request: &Request) -> Result<Response, ApiError> {
    let options = options_from_headers(request)?;
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "request body is not valid UTF-8"))?;
    let rows = json::parse_f32_rows(body).map_err(|e| ApiError::new(400, e.to_string()))?;

    let version = shared
        .target
        .registry()
        .lookup(name)
        .map(|model| model.version());

    // Submit one by one and count exactly what reached the stack, so
    // bcpnn_gateway_predict_rows_total reconciles with the serve-side
    // per-row requests counter even when a mid-request submit fails.
    let mut handles = Vec::with_capacity(rows.len());
    let mut submit_err = None;
    for features in rows {
        match shared.target.submit_with_options(name, features, options) {
            Ok(handle) => handles.push(handle),
            Err(err) => {
                submit_err = Some(err);
                break;
            }
        }
    }
    shared.metrics.record_predict_rows(handles.len() as u64);
    if let Some(err) = submit_err {
        return Err(ApiError::from(err));
    }

    // Abstention is reported in-band: an abstained row gets a `null`
    // prediction and `"abstained": true`, so one low-confidence row does
    // not turn its siblings' answers into an error response. Uncertainty
    // (entropy and top-2 margin) is recomputed here from the returned
    // probabilities with the same `bcpnn_core::uncertainty` kernels every
    // layer uses, so the JSON numbers are bit-identical to a direct
    // in-process call.
    let mut predictions = Vec::with_capacity(handles.len());
    let mut uncertainty = Vec::with_capacity(handles.len());
    let mut abstained = Vec::with_capacity(handles.len());
    for handle in handles {
        match handle.wait() {
            Ok(proba) => {
                uncertainty.push(Json::Obj(vec![
                    (
                        "entropy".into(),
                        Json::f32(bcpnn_core::uncertainty::entropy(&proba)),
                    ),
                    (
                        "margin".into(),
                        Json::f32(bcpnn_core::uncertainty::margin(&proba)),
                    ),
                ]));
                predictions.push(Json::Arr(proba.into_iter().map(Json::f32).collect()));
                abstained.push(Json::Bool(false));
            }
            Err(bcpnn_serve::ServeError::Abstained) => {
                predictions.push(Json::Null);
                uncertainty.push(Json::Null);
                abstained.push(Json::Bool(true));
            }
            Err(err) => return Err(ApiError::from(err)),
        }
    }
    let body = Json::Obj(vec![
        ("model".into(), Json::str(name)),
        ("version".into(), version.map_or(Json::Null, Json::u64)),
        ("predictions".into(), Json::Arr(predictions)),
        ("uncertainty".into(), Json::Arr(uncertainty)),
        ("abstained".into(), Json::Arr(abstained)),
    ]);
    Ok(Response::json(200, body.render()))
}

/// `PUT /v1/models/{name}`: load a persisted `v1`–`v3` artifact from a
/// path on the gateway host and publish it — the registry's atomic
/// hot-swap, over the wire. Body:
/// `{"path": "...", "version": N, "backend": "naive"|"parallel"}`
/// (backend optional, default parallel).
fn handle_publish(shared: &Shared, name: &str, request: &Request) -> Result<Response, ApiError> {
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "request body is not valid UTF-8"))?;
    let doc = json::parse(body).map_err(|e| ApiError::new(400, e.to_string()))?;
    let path = doc
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "missing string field \"path\""))?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::new(400, "missing integer field \"version\""))?;
    let backend = match doc.get("backend") {
        None | Some(Json::Null) => BackendKind::Parallel,
        Some(value) => value.as_str().and_then(BackendKind::parse).ok_or_else(|| {
            ApiError::new(400, "field \"backend\" must be \"naive\" or \"parallel\"")
        })?,
    };

    // Allowlist first: with an artifact root configured, a path resolving
    // outside it is forbidden before the filesystem entry is touched.
    if let Some(root) = &shared.artifact_root {
        if !crate::artifact::path_allowed(root, std::path::Path::new(path)) {
            return Err(ApiError::new(
                403,
                format!("artifact path {path:?} is outside the allowed root"),
            ));
        }
    }

    // A bad artifact is the client's problem (unprocessable content), not
    // an internal error: the gateway stays healthy and says what failed.
    let pipeline = Pipeline::load(path, backend)
        .map_err(|e| ApiError::new(422, format!("cannot load artifact at {path:?}: {e}")))?;
    let (handle, displaced) = shared
        .target
        .registry()
        .publish(ServedModel::new(name, version, pipeline));
    let body = Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("version".into(), Json::u64(handle.version())),
        (
            "displaced_version".into(),
            displaced.map_or(Json::Null, |m| Json::u64(m.version())),
        ),
    ]);
    Ok(Response::json(200, body.render()))
}

/// `POST /v1/models/{name}/learn`: feed labeled rows to the model's
/// online learner. Body:
/// `{"rows": [[...], ...], "labels": [0, 1, ...]}` — the same
/// array-of-arrays row encoding (and bit-exact f32 parsing) as the
/// predict endpoint, plus one integer class label per row.
///
/// Acceptance is durability, not training: a 200 means every row is in
/// the learner's bounded queue and will be written to the replay log
/// before it is folded. A full queue is backpressure (429); models with
/// no learner attached answer 404.
fn handle_learn(shared: &Shared, name: &str, request: &Request) -> Result<Response, ApiError> {
    let learner = shared.learner(name).ok_or_else(|| {
        ApiError::new(
            404,
            format!("no online learner is attached to model {name:?}"),
        )
    })?;
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "request body is not valid UTF-8"))?;
    let doc = json::parse(body).map_err(|e| ApiError::new(400, e.to_string()))?;
    let rows_json = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::new(400, "missing array field \"rows\""))?;
    let mut rows = Vec::with_capacity(rows_json.len());
    for row in rows_json {
        let cells = row
            .as_array()
            .ok_or_else(|| ApiError::new(400, "\"rows\" must be an array of arrays"))?;
        let mut features = Vec::with_capacity(cells.len());
        for cell in cells {
            let value = match cell {
                Json::Num(n) => n.as_f32(),
                _ => None,
            };
            features
                .push(value.ok_or_else(|| ApiError::new(400, "rows must contain finite numbers"))?);
        }
        rows.push(features);
    }
    let labels_json = doc
        .get("labels")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::new(400, "missing array field \"labels\""))?;
    let mut labels = Vec::with_capacity(labels_json.len());
    for label in labels_json {
        labels.push(label.as_u64().ok_or_else(|| {
            ApiError::new(400, "\"labels\" must be an array of non-negative integers")
        })? as usize);
    }

    let accepted = learner.submit(&rows, &labels).map_err(|err| {
        let status = match &err {
            LearnError::QueueFull { .. } => 429,
            LearnError::ShuttingDown => 503,
            _ => 400,
        };
        ApiError::new(status, err.to_string())
    })?;
    let snapshot = learner.metrics();
    let body = Json::Obj(vec![
        ("model".into(), Json::str(name)),
        ("accepted".into(), Json::u64(accepted as u64)),
        ("queue_depth".into(), Json::u64(snapshot.queue_depth)),
        ("publishes".into(), Json::u64(snapshot.publishes)),
    ]);
    Ok(Response::json(200, body.render()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use bcpnn_serve::{ModelRegistry, ShardConfig, ShardedServer};

    /// A gateway over an empty registry: everything but training.
    fn empty_gateway() -> (Gateway, Arc<ShardedServer>) {
        let registry = Arc::new(ModelRegistry::new());
        let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(2)));
        let gateway = Gateway::start(
            Arc::clone(&server) as Arc<dyn ServeTarget>,
            GatewayConfig {
                workers: 2,
                ..GatewayConfig::default()
            },
        )
        .expect("gateway binds an ephemeral port");
        (gateway, server)
    }

    #[test]
    fn healthz_answers_ok() {
        let (gateway, _server) = empty_gateway();
        let response = client::request(gateway.local_addr(), "GET", "/healthz", &[], b"").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "{\"status\":\"ok\"}");
        assert_eq!(response.header("content-type"), Some("application/json"));
    }

    #[test]
    fn unknown_route_is_404_and_wrong_method_is_405() {
        let (gateway, _server) = empty_gateway();
        let addr = gateway.local_addr();
        assert_eq!(
            client::request(addr, "GET", "/nope", &[], b"")
                .unwrap()
                .status,
            404
        );
        let r = client::request(addr, "POST", "/healthz", &[], b"").unwrap();
        assert_eq!(r.status, 405);
        assert_eq!(r.header("allow"), Some("GET"));
    }

    #[test]
    fn predict_on_unknown_model_is_404_and_never_reaches_a_worker() {
        let (gateway, server) = empty_gateway();
        let r = client::request(
            gateway.local_addr(),
            "POST",
            "/v1/models/ghost/predict",
            &[],
            b"[[1,2,3]]",
        )
        .unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(
            server.metrics().requests,
            0,
            "no submission must reach the stack"
        );
        assert_eq!(gateway.metrics().status_4xx, 1);
    }

    #[test]
    fn malformed_json_is_400_without_touching_the_stack() {
        let (gateway, server) = empty_gateway();
        for body in [&b"not json"[..], b"[[1,2],[3]]", b"[]", b"{\"rows\":1}"] {
            let r = client::request(
                gateway.local_addr(),
                "POST",
                "/v1/models/ghost/predict",
                &[],
                body,
            )
            .unwrap();
            assert_eq!(r.status, 400, "body {body:?}");
        }
        assert_eq!(server.metrics().requests, 0);
    }

    #[test]
    fn invalid_option_headers_are_400() {
        let (gateway, _server) = empty_gateway();
        let addr = gateway.local_addr();
        let r = client::request(
            addr,
            "POST",
            "/v1/models/ghost/predict",
            &[("X-Priority", "urgent")],
            b"[[1]]",
        )
        .unwrap();
        assert_eq!(r.status, 400);
        let r = client::request(
            addr,
            "POST",
            "/v1/models/ghost/predict",
            &[("X-Deadline-Ms", "soon")],
            b"[[1]]",
        )
        .unwrap();
        assert_eq!(r.status, 400);
    }

    #[test]
    fn malformed_abstain_header_is_400_without_a_forward_pass() {
        let (gateway, server) = empty_gateway();
        let addr = gateway.local_addr();
        // The rejection table: junk, non-finite, and out-of-range values
        // must all be refused before any submission reaches the stack.
        for bad in ["abc", "NaN", "inf", "-inf", "1.5", "-0.1", "", "0.2.3"] {
            let r = client::request(
                addr,
                "POST",
                "/v1/models/ghost/predict",
                &[("X-Abstain-Below", bad)],
                b"[[1]]",
            )
            .unwrap();
            assert_eq!(r.status, 400, "X-Abstain-Below {bad:?} must be rejected");
            assert!(
                r.body_str().contains("X-Abstain-Below"),
                "error names the header for {bad:?}"
            );
        }
        assert_eq!(
            server.metrics().requests,
            0,
            "rejected headers never cost a forward pass"
        );
    }

    #[test]
    fn list_models_is_empty_json_on_an_empty_registry() {
        let (gateway, _server) = empty_gateway();
        let r = client::request(gateway.local_addr(), "GET", "/v1/models", &[], b"").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body_str(), "{\"models\":[]}");
    }

    #[test]
    fn metrics_scrape_is_a_valid_combined_exposition() {
        let (gateway, _server) = empty_gateway();
        let addr = gateway.local_addr();
        // A request beforehand so gateway counters are non-zero.
        let _ = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
        let r = client::request(addr, "GET", "/metrics", &[], b"").unwrap();
        assert_eq!(r.status, 200);
        let text = r.body_str();
        bcpnn_serve::validate_prometheus(&text).expect("combined exposition parses");
        assert!(text.contains("bcpnn_serve_queue_depth"));
        assert!(text.contains("bcpnn_gateway_requests_total"));
    }

    #[test]
    fn learn_without_a_learner_is_404() {
        let (gateway, _server) = empty_gateway();
        let r = client::request(
            gateway.local_addr(),
            "POST",
            "/v1/models/higgs/learn",
            &[],
            b"{\"rows\":[[1,2]],\"labels\":[0]}",
        )
        .unwrap();
        assert_eq!(r.status, 404);
        assert!(r.body_str().contains("no online learner"));
    }

    #[test]
    fn publish_with_a_bad_path_is_422() {
        let (gateway, _server) = empty_gateway();
        let r = client::request(
            gateway.local_addr(),
            "PUT",
            "/v1/models/higgs",
            &[],
            b"{\"path\":\"/definitely/not/a/model\",\"version\":1}",
        )
        .unwrap();
        assert_eq!(r.status, 422);
        assert!(r.body_str().contains("cannot load artifact"));
    }

    #[test]
    fn publish_outside_the_artifact_root_is_403() {
        let root = std::env::temp_dir().join(format!("bcpnn-gw-allowlist-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let registry = Arc::new(ModelRegistry::new());
        let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(1)));
        let gateway = Gateway::start(
            Arc::clone(&server) as Arc<dyn ServeTarget>,
            GatewayConfig {
                workers: 1,
                artifact_root: Some(root.clone()),
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let addr = gateway.local_addr();
        // Outside the root: forbidden, with the path named.
        let r = client::request(
            addr,
            "PUT",
            "/v1/models/higgs",
            &[],
            b"{\"path\":\"/definitely/not/a/model\",\"version\":1}",
        )
        .unwrap();
        assert_eq!(r.status, 403);
        assert!(r.body_str().contains("outside the allowed root"));
        // Inside the root but not a loadable artifact: past the
        // allowlist, into the loader's 422.
        let inside = root.join("empty");
        std::fs::create_dir_all(&inside).unwrap();
        let body = format!("{{\"path\":{:?},\"version\":1}}", inside.to_str().unwrap());
        let r = client::request(addr, "PUT", "/v1/models/higgs", &[], body.as_bytes()).unwrap();
        assert_eq!(r.status, 422);
    }

    #[test]
    fn publish_with_missing_fields_is_400() {
        let (gateway, _server) = empty_gateway();
        let addr = gateway.local_addr();
        for body in [
            &b"{}"[..],
            b"{\"path\":\"x\"}",
            b"{\"path\":\"x\",\"version\":\"v2\"}",
        ] {
            let r = client::request(addr, "PUT", "/v1/models/higgs", &[], body).unwrap();
            assert_eq!(r.status, 400, "body {body:?}");
        }
    }

    #[test]
    fn oversized_body_is_413_before_parsing() {
        let registry = Arc::new(ModelRegistry::new());
        let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(1)));
        let gateway = Gateway::start(
            Arc::clone(&server) as Arc<dyn ServeTarget>,
            GatewayConfig {
                workers: 1,
                limits: Limits {
                    max_head_bytes: 4096,
                    max_body_bytes: 32,
                    ..Limits::default()
                },
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let big = vec![b'1'; 1024];
        let r = client::request(
            gateway.local_addr(),
            "POST",
            "/v1/models/m/predict",
            &[],
            &big,
        )
        .unwrap();
        assert_eq!(r.status, 413);
        assert_eq!(server.metrics().requests, 0);
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let (gateway, _server) = empty_gateway();
        let addr = gateway.local_addr();
        let _ = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
        drop(gateway);
        // The port is released: a fresh connection is refused or reset.
        assert!(client::request(addr, "GET", "/healthz", &[], b"").is_err());
    }

    #[test]
    fn gateway_metrics_count_requests_and_bytes() {
        let (gateway, _server) = empty_gateway();
        let addr = gateway.local_addr();
        let _ = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
        let _ = client::request(addr, "GET", "/nope", &[], b"").unwrap();
        let m = gateway.metrics();
        assert_eq!(m.requests, 2);
        assert_eq!(m.status_2xx, 1);
        assert_eq!(m.status_4xx, 1);
        assert!(m.bytes_out > 0);
    }
}
