//! Error-to-status mapping: every failure inside the gateway renders as
//! one JSON error response with the right status code.
//!
//! The interesting mapping is [`ServeError`] → HTTP status, the contract
//! between the serving stack's typed failures and what a client on the
//! wire sees:
//!
//! | `ServeError`        | status | rationale                                   |
//! |---------------------|--------|---------------------------------------------|
//! | `UnknownModel`      | 404    | the resource does not exist                 |
//! | `ShapeMismatch`     | 400    | the client sent the wrong number of features|
//! | `DeadlineExceeded`  | 504    | the gateway gave up waiting, as a proxy does|
//! | `Abstained`         | 204    | the model declined to answer: no content    |
//! | `Disconnected`      | 503    | the backend is shutting down; retryable     |
//! | `Io`                | 502    | the artifact behind the gateway failed      |
//! | `Model` / others    | 500    | the model itself rejected a valid batch     |
//!
//! (Learn-endpoint backpressure — `LearnError::QueueFull` — maps to `429`
//! in the learn handler, outside this table.)
//!
//! On the batch predict endpoint, abstention is reported **in-band**
//! instead: abstained rows carry `null` predictions plus
//! `"abstained": true` in a `200` response, so one low-confidence row
//! does not discard its siblings' answers. The `204` mapping covers any
//! path that surfaces the raw [`ServeError::Abstained`].

use bcpnn_serve::ServeError;

use crate::http::Response;
use crate::json::Json;

/// A failure that has been assigned its HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Human-readable message for the JSON error body.
    pub message: String,
    /// Optional `Allow` header value (405 responses).
    pub allow: Option<&'static str>,
}

impl ApiError {
    /// Build an error with a status and message.
    pub fn new(status: u16, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            message: message.into(),
            allow: None,
        }
    }

    /// Render as the gateway's uniform JSON error response:
    /// `{"error": "...", "status": N}`.
    pub fn into_response(self) -> Response {
        let body = Json::Obj(vec![
            ("error".into(), Json::str(self.message)),
            ("status".into(), Json::u64(u64::from(self.status))),
        ])
        .render();
        let mut response = Response::json(self.status, body);
        if let Some(allow) = self.allow {
            response.extra_headers.push(("allow", allow.to_string()));
        }
        response
    }
}

/// The HTTP status a [`ServeError`] maps to.
pub fn status_of(err: &ServeError) -> u16 {
    match err {
        ServeError::UnknownModel(_) => 404,
        ServeError::ShapeMismatch { .. } => 400,
        ServeError::DeadlineExceeded => 504,
        ServeError::Abstained => 204,
        ServeError::Disconnected => 503,
        ServeError::Io(_) => 502,
        // `Model` plus any variant added under #[non_exhaustive]: the
        // request was well-formed, the backend failed.
        _ => 500,
    }
}

impl From<ServeError> for ApiError {
    fn from(err: ServeError) -> ApiError {
        ApiError::new(status_of(&err), err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_errors_map_to_documented_statuses() {
        assert_eq!(status_of(&ServeError::UnknownModel("m".into())), 404);
        assert_eq!(
            status_of(&ServeError::ShapeMismatch {
                expected: 28,
                got: 2
            }),
            400
        );
        assert_eq!(status_of(&ServeError::DeadlineExceeded), 504);
        assert_eq!(status_of(&ServeError::Abstained), 204);
        assert_eq!(status_of(&ServeError::Disconnected), 503);
        assert_eq!(status_of(&ServeError::Io("gone".into())), 502);
        assert_eq!(status_of(&ServeError::Model("bad".into())), 500);
    }

    #[test]
    fn error_response_is_json_with_the_status_echoed() {
        let response = ApiError::from(ServeError::UnknownModel("higgs".into())).into_response();
        assert_eq!(response.status, 404);
        let body = String::from_utf8(response.body).unwrap();
        let doc = crate::json::parse(&body).unwrap();
        assert!(doc
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("higgs"));
        assert_eq!(doc.get("status").unwrap().as_u64(), Some(404));
    }

    #[test]
    fn allow_header_is_attached_when_set() {
        let mut err = ApiError::new(405, "nope");
        err.allow = Some("GET");
        let response = err.into_response();
        assert!(response
            .extra_headers
            .iter()
            .any(|(k, v)| *k == "allow" && v == "GET"));
    }
}
