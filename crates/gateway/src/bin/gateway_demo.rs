//! `bcpnn-gateway` demo: train a Higgs classifier, expose it over HTTP,
//! and print a curl walkthrough for every endpoint.
//!
//! ```text
//! bcpnn-gateway [--addr HOST:PORT] [--shards N] [--workers N]
//!               [--train-samples N] [--model-dir DIR]
//!               [--port-file PATH] [--self-test]
//! ```
//!
//! By default the gateway binds an ephemeral port, prints the walkthrough,
//! and serves until killed — the shape the CI `gateway` job drives with
//! curl (`--port-file` publishes the chosen port). `--self-test` instead
//! runs the whole walkthrough in-process through the bundled HTTP client
//! and exits non-zero on any failure.

use std::path::PathBuf;
use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_gateway::{client, Gateway, GatewayConfig};
use bcpnn_serve::{ModelRegistry, Pipeline, ServeTarget, ServedModel, ShardConfig, ShardedServer};

struct Args {
    addr: String,
    shards: usize,
    workers: usize,
    train_samples: usize,
    model_dir: PathBuf,
    port_file: Option<PathBuf>,
    self_test: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            workers: 4,
            train_samples: 2000,
            model_dir: std::env::temp_dir().join("bcpnn-gateway-demo"),
            port_file: None,
            self_test: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |what: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("error: {flag} needs a {what}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--addr" => args.addr = value("host:port"),
                "--shards" => args.shards = parse_num(&flag, &value("count")),
                "--workers" => args.workers = parse_num(&flag, &value("count")),
                "--train-samples" => args.train_samples = parse_num(&flag, &value("count")),
                "--model-dir" => args.model_dir = PathBuf::from(value("directory")),
                "--port-file" => args.port_file = Some(PathBuf::from(value("path"))),
                "--self-test" => args.self_test = true,
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

fn parse_num(flag: &str, raw: &str) -> usize {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} needs a number, got {raw:?}");
        std::process::exit(2);
    })
}

/// Train one model version on synthetic Higgs data.
fn train_version(n_samples: usize, seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples,
        seed,
        ..Default::default()
    });
    let (pipeline, _report) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training on synthetic data succeeds");
    pipeline
}

fn main() {
    let args = Args::parse();
    println!("== bcpnn-gateway demo ==");
    println!(
        "training v1 (served) and v2 (saved for hot-swap) on {} synthetic Higgs collisions each...",
        args.train_samples
    );
    let v1 = train_version(args.train_samples, 1);
    let v2 = train_version(args.train_samples, 2);
    let v2_dir = args.model_dir.join("higgs-v2");
    v2.save(&v2_dir).expect("saving the v2 artifact succeeds");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, v1));
    let server = Arc::new(ShardedServer::start(
        Arc::clone(&registry),
        ShardConfig::new(args.shards),
    ));
    let gateway = Gateway::start(
        Arc::clone(&server) as Arc<dyn ServeTarget>,
        GatewayConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway binds");
    let addr = gateway.local_addr();
    if let Some(port_file) = &args.port_file {
        std::fs::write(port_file, addr.port().to_string()).expect("port file is writable");
    }

    // One example row so the walkthrough's predict body is copy-pasteable.
    let sample = generate(&SyntheticHiggsConfig {
        n_samples: 1,
        seed: 42,
        ..Default::default()
    });
    let row: Vec<String> = sample
        .features
        .row(0)
        .iter()
        .map(|v| v.to_string())
        .collect();
    let row_json = format!("[[{}]]", row.join(","));

    println!();
    println!(
        "listening on http://{addr} ({} shards, {} gateway workers)",
        args.shards, args.workers
    );
    println!();
    println!("== curl walkthrough ==");
    println!("# liveness");
    println!("curl -s http://{addr}/healthz");
    println!("# registry listing (name, version, shapes)");
    println!("curl -s http://{addr}/v1/models");
    println!("# predict: rows in, probabilities out (with scheduling headers)");
    println!(
        "curl -s -X POST http://{addr}/v1/models/higgs/predict \\\n     -H 'X-Priority: high' -H 'X-Deadline-Ms: 250' \\\n     -d '{row_json}'"
    );
    println!("# Prometheus scrape: serving (per-shard + aggregate) and gateway counters");
    println!("curl -s http://{addr}/metrics | grep -E 'queue_depth|gateway_requests'");
    println!("# hot-swap to the saved v2 artifact (atomic; in-flight batches finish on v1)");
    println!(
        "curl -s -X PUT http://{addr}/v1/models/higgs \\\n     -d '{{\"path\":\"{}\",\"version\":2,\"backend\":\"parallel\"}}'",
        v2_dir.display()
    );
    println!();

    if args.self_test {
        run_self_test(addr, &row_json, &v2_dir);
        return;
    }

    println!("serving until killed (ctrl-c)...");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Drive the walkthrough through the bundled client and verify each step.
fn run_self_test(addr: std::net::SocketAddr, row_json: &str, v2_dir: &std::path::Path) {
    println!("== self-test ==");
    let mut ok = true;
    let mut check = |what: &str, passed: bool| {
        println!("{} {what}", if passed { "ok  " } else { "FAIL" });
        ok &= passed;
    };

    let health = client::request(addr, "GET", "/healthz", &[], b"").expect("healthz responds");
    check(
        "healthz is 200 ok",
        health.status == 200 && health.body_str().contains("ok"),
    );

    let predict = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Priority", "high"), ("X-Deadline-Ms", "2000")],
        row_json.as_bytes(),
    )
    .expect("predict responds");
    check(
        "predict is 200 with v1 predictions",
        predict.status == 200 && predict.body_str().contains("\"version\":1"),
    );

    let swap_body = format!(
        "{{\"path\":\"{}\",\"version\":2,\"backend\":\"parallel\"}}",
        v2_dir.display()
    );
    let swap = client::request(addr, "PUT", "/v1/models/higgs", &[], swap_body.as_bytes())
        .expect("swap responds");
    check(
        "hot-swap is 200 and displaced v1",
        swap.status == 200 && swap.body_str().contains("\"displaced_version\":1"),
    );

    let models = client::request(addr, "GET", "/v1/models", &[], b"").expect("listing responds");
    check(
        "listing shows version 2",
        models.status == 200 && models.body_str().contains("\"version\":2"),
    );

    let metrics = client::request(addr, "GET", "/metrics", &[], b"").expect("metrics responds");
    let text = metrics.body_str();
    check(
        "metrics scrape is a valid exposition",
        metrics.status == 200 && bcpnn_serve::validate_prometheus(&text).is_ok(),
    );
    check(
        "scrape exports queue depth and gateway counters",
        text.contains("bcpnn_serve_queue_depth") && text.contains("bcpnn_gateway_requests_total"),
    );

    let missing = client::request(addr, "POST", "/v1/models/ghost/predict", &[], b"[[1]]")
        .expect("unknown model responds");
    check("unknown model is 404", missing.status == 404);

    println!();
    println!(
        "{}",
        if ok {
            "OK: gateway walkthrough verified"
        } else {
            "FAILED: see steps above"
        }
    );
    std::process::exit(i32::from(!ok));
}
