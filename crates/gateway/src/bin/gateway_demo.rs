//! `bcpnn-gateway` demo: train a Higgs classifier, expose it over HTTP,
//! and print a curl walkthrough for every endpoint.
//!
//! ```text
//! bcpnn-gateway [--addr HOST:PORT] [--shards N] [--workers N]
//!               [--train-samples N] [--model-dir DIR]
//!               [--port-file PATH] [--self-test]
//! ```
//!
//! By default the gateway binds an ephemeral port, prints the walkthrough,
//! and serves until killed — the shape the CI `gateway` job drives with
//! curl (`--port-file` publishes the chosen port). `--self-test` instead
//! runs the whole walkthrough in-process through the bundled HTTP client
//! and exits non-zero on any failure.

use std::path::PathBuf;
use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_gateway::{client, Gateway, GatewayConfig};
use bcpnn_learn::{LearnerConfig, OnlineLearner};
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_serve::{ModelRegistry, Pipeline, ServeTarget, ServedModel, ShardConfig, ShardedServer};

struct Args {
    addr: String,
    shards: usize,
    workers: usize,
    train_samples: usize,
    model_dir: PathBuf,
    port_file: Option<PathBuf>,
    self_test: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            workers: 4,
            train_samples: 2000,
            model_dir: std::env::temp_dir().join("bcpnn-gateway-demo"),
            port_file: None,
            self_test: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |what: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("error: {flag} needs a {what}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--addr" => args.addr = value("host:port"),
                "--shards" => args.shards = parse_num(&flag, &value("count")),
                "--workers" => args.workers = parse_num(&flag, &value("count")),
                "--train-samples" => args.train_samples = parse_num(&flag, &value("count")),
                "--model-dir" => args.model_dir = PathBuf::from(value("directory")),
                "--port-file" => args.port_file = Some(PathBuf::from(value("path"))),
                "--self-test" => args.self_test = true,
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

fn parse_num(flag: &str, raw: &str) -> usize {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} needs a number, got {raw:?}");
        std::process::exit(2);
    })
}

/// Train one model version on synthetic Higgs data.
fn train_version(n_samples: usize, seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples,
        seed,
        ..Default::default()
    });
    let (pipeline, _report) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training on synthetic data succeeds");
    pipeline
}

fn main() {
    let args = Args::parse();
    println!("== bcpnn-gateway demo ==");
    println!(
        "training v1 (served) and v2 (saved for hot-swap) on {} synthetic Higgs collisions each...",
        args.train_samples
    );
    let v1 = train_version(args.train_samples, 1);
    let v2 = train_version(args.train_samples, 2);
    let v2_dir = args.model_dir.join("higgs-v2");
    v2.save(&v2_dir).expect("saving the v2 artifact succeeds");

    // The same v1 weights as a 4x-smaller int8 artifact, served side by
    // side under its own name so the two tiers can be compared live.
    let int8 =
        QuantizedPipeline::quantize(&v1, QuantPrecision::Int8).expect("int8 quantization succeeds");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, v1.clone()));
    registry.publish(ServedModel::new("higgs-int8", 1, int8));
    let server = Arc::new(ShardedServer::start(
        Arc::clone(&registry),
        ShardConfig::new(args.shards),
    ));
    // Online learning for "higgs": labeled rows POSTed to the learn
    // endpoint fold into a shadow model that hot-swaps in when it beats
    // the live one on held-out traffic.
    // The demo retrains v1 from scratch every run, so stale learner state
    // from a previous run would describe a different base model.
    let _ = std::fs::remove_dir_all(args.model_dir.join("learn-state"));
    let learner = Arc::new(
        OnlineLearner::start(
            Arc::clone(&registry),
            "higgs",
            &v1,
            LearnerConfig {
                state_dir: args.model_dir.join("learn-state"),
                backend: BackendKind::Parallel,
                publish_rows: 500,
                publish_interval: std::time::Duration::from_secs(10),
                ..LearnerConfig::default()
            },
        )
        .expect("online learner starts"),
    );
    let gateway = Gateway::start_with_learners(
        Arc::clone(&server) as Arc<dyn ServeTarget>,
        GatewayConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            ..GatewayConfig::default()
        },
        vec![Arc::clone(&learner)],
    )
    .expect("gateway binds");
    let addr = gateway.local_addr();
    if let Some(port_file) = &args.port_file {
        std::fs::write(port_file, addr.port().to_string()).expect("port file is writable");
    }

    // One example row so the walkthrough's predict body is copy-pasteable.
    let sample = generate(&SyntheticHiggsConfig {
        n_samples: 1,
        seed: 42,
        ..Default::default()
    });
    let row: Vec<String> = sample
        .features
        .row(0)
        .iter()
        .map(|v| v.to_string())
        .collect();
    let row_json = format!("[[{}]]", row.join(","));

    println!();
    println!(
        "listening on http://{addr} ({} shards, {} gateway workers)",
        args.shards, args.workers
    );
    println!();
    println!("== curl walkthrough ==");
    println!("# liveness");
    println!("curl -s http://{addr}/healthz");
    println!("# registry listing (name, version, shapes)");
    println!("curl -s http://{addr}/v1/models");
    println!("# predict: rows in, probabilities out (with scheduling headers)");
    println!(
        "curl -s -X POST http://{addr}/v1/models/higgs/predict \\\n     -H 'X-Priority: high' -H 'X-Deadline-Ms: 250' \\\n     -d '{row_json}'"
    );
    println!("# the same weights served int8-quantized (4x smaller)");
    println!("curl -s -X POST http://{addr}/v1/models/higgs-int8/predict -d '{row_json}'");
    println!("# online learning: feed labeled rows; the shadow model hot-swaps in");
    println!("# automatically once it beats the live one on held-out traffic");
    println!(
        "curl -s -X POST http://{addr}/v1/models/higgs/learn \\\n     -d '{{\"rows\":{row_json},\"labels\":[1]}}'"
    );
    println!("# Prometheus scrape: serving, gateway, and online-learning counters");
    println!("curl -s http://{addr}/metrics | grep -E 'queue_depth|gateway_requests|learn_rows'");
    println!("# hot-swap to the saved v2 artifact (atomic; in-flight batches finish on v1)");
    println!(
        "curl -s -X PUT http://{addr}/v1/models/higgs \\\n     -d '{{\"path\":\"{}\",\"version\":2,\"backend\":\"parallel\"}}'",
        v2_dir.display()
    );
    println!();

    if args.self_test {
        run_self_test(addr, &row_json, &v2_dir, &learner);
        return;
    }

    println!("serving until killed (ctrl-c)...");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Drive the walkthrough through the bundled client and verify each step.
fn run_self_test(
    addr: std::net::SocketAddr,
    row_json: &str,
    v2_dir: &std::path::Path,
    learner: &OnlineLearner,
) {
    println!("== self-test ==");
    let mut ok = true;
    let mut check = |what: &str, passed: bool| {
        println!("{} {what}", if passed { "ok  " } else { "FAIL" });
        ok &= passed;
    };

    let health = client::request(addr, "GET", "/healthz", &[], b"").expect("healthz responds");
    check(
        "healthz is 200 ok",
        health.status == 200 && health.body_str().contains("ok"),
    );

    let predict = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Priority", "high"), ("X-Deadline-Ms", "2000")],
        row_json.as_bytes(),
    )
    .expect("predict responds");
    check(
        "predict is 200 with v1 predictions",
        predict.status == 200 && predict.body_str().contains("\"version\":1"),
    );

    let int8 = client::request(
        addr,
        "POST",
        "/v1/models/higgs-int8/predict",
        &[],
        row_json.as_bytes(),
    )
    .expect("int8 predict responds");
    check(
        "int8 model predicts over the same endpoint",
        int8.status == 200 && int8.body_str().contains("\"predictions\""),
    );

    let swap_body = format!(
        "{{\"path\":\"{}\",\"version\":2,\"backend\":\"parallel\"}}",
        v2_dir.display()
    );
    let swap = client::request(addr, "PUT", "/v1/models/higgs", &[], swap_body.as_bytes())
        .expect("swap responds");
    check(
        "hot-swap is 200 and displaced v1",
        swap.status == 200 && swap.body_str().contains("\"displaced_version\":1"),
    );

    let models = client::request(addr, "GET", "/v1/models", &[], b"").expect("listing responds");
    check(
        "listing shows version 2",
        models.status == 200 && models.body_str().contains("\"version\":2"),
    );

    let metrics = client::request(addr, "GET", "/metrics", &[], b"").expect("metrics responds");
    let text = metrics.body_str();
    check(
        "metrics scrape is a valid exposition",
        metrics.status == 200 && bcpnn_serve::validate_prometheus(&text).is_ok(),
    );
    check(
        "scrape exports queue depth and gateway counters",
        text.contains("bcpnn_serve_queue_depth") && text.contains("bcpnn_gateway_requests_total"),
    );

    let missing = client::request(addr, "POST", "/v1/models/ghost/predict", &[], b"[[1]]")
        .expect("unknown model responds");
    check("unknown model is 404", missing.status == 404);

    // learn -> publish -> predict: stream enough labeled rows to cross the
    // publish threshold, wait for the folds, and confirm the automatic
    // hot-swap (the PUT above made the live model v2, so the learner's
    // publish lands as v3).
    let mut learn_ok = true;
    let mut streamed = 0u64;
    // Each 600-row round crosses the 500-trained-row publish threshold
    // once; a round whose gated publish is rejected (the shadow has not
    // caught up to the live model yet) just feeds the next round.
    for round in 0..5 {
        let learn_data = generate(&SyntheticHiggsConfig {
            n_samples: 600,
            seed: 7 + round,
            ..Default::default()
        });
        for start in (0..600).step_by(100) {
            let rows: Vec<String> = (start..start + 100)
                .map(|r| {
                    let cells: Vec<String> = learn_data
                        .features
                        .row(r)
                        .iter()
                        .map(|v| v.to_string())
                        .collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let labels: Vec<String> = learn_data.labels[start..start + 100]
                .iter()
                .map(ToString::to_string)
                .collect();
            let body = format!(
                "{{\"rows\":[{}],\"labels\":[{}]}}",
                rows.join(","),
                labels.join(",")
            );
            let learn =
                client::request(addr, "POST", "/v1/models/higgs/learn", &[], body.as_bytes())
                    .expect("learn responds");
            learn_ok &= learn.status == 200 && learn.body_str().contains("\"accepted\":100");
            streamed += 100;
        }
        learner.drain();
        if learner.metrics().publishes >= 1 {
            break;
        }
    }
    check("learn accepts the streamed rows", learn_ok);
    let snapshot = learner.metrics();
    check(
        "shadow published at least once (learn -> hot-swap)",
        snapshot.publishes >= 1,
    );
    let post_swap = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[],
        row_json.as_bytes(),
    )
    .expect("post-swap predict responds");
    let served_version = bcpnn_gateway::json::parse(&post_swap.body_str())
        .ok()
        .and_then(|doc| {
            doc.get("version")
                .and_then(bcpnn_gateway::json::Json::as_u64)
        })
        .unwrap_or(0);
    check(
        "post-publish predict serves the learner's version (past the PUT's v2)",
        post_swap.status == 200 && served_version >= 3,
    );
    let rescrape = client::request(addr, "GET", "/metrics", &[], b"").expect("metrics responds");
    check(
        "scrape counts the learned rows",
        rescrape.body_str().contains(&format!(
            "bcpnn_learn_rows_total{{model=\"higgs\"}} {streamed}"
        )),
    );

    println!();
    println!(
        "{}",
        if ok {
            "OK: gateway walkthrough verified"
        } else {
            "FAILED: see steps above"
        }
    );
    std::process::exit(i32::from(!ok));
}
