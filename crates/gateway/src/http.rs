//! Minimal HTTP/1.1 on `std::io`: request parsing with hard limits and
//! response writing.
//!
//! The gateway speaks exactly the subset its endpoints need — one request
//! per connection (`Connection: close`), `Content-Length` bodies, no
//! chunked transfer encoding, no keep-alive (listed as an open item in the
//! ROADMAP). What it does speak, it speaks defensively: the request head
//! and body have byte ceilings, and every malformed input maps to a typed
//! [`HttpError`] that the server layer renders as a 4xx — a bad request
//! must never reach a serving worker.

use std::io::{Read, Write};

/// Hard limits applied while reading a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (larger `Content-Length`s are rejected with
    /// 413 before the body is read).
    pub max_body_bytes: usize,
    /// Overall wall-clock ceiling for reading one request. The socket
    /// read timeout is per-`read()` and resets on every byte, so a
    /// slowloris client dribbling one byte per poll could otherwise hold
    /// a worker for hours within the byte ceilings alone.
    pub max_request_time: std::time::Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            max_request_time: std::time::Duration::from_secs(30),
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any `?query` suffix split off.
    pub path: String,
    /// Header name/value pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant carries the status code
/// the server should answer with.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request line, header, or framing.
    BadRequest(String),
    /// The declared `Content-Length` exceeds the body limit.
    PayloadTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The request head (line + headers) exceeds the head limit.
    HeadTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The underlying socket failed or timed out.
    Io(std::io::Error),
}

impl HttpError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge { .. } => 413,
            HttpError::HeadTooLarge { .. } => 431,
            HttpError::Io(_) => 408,
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::PayloadTooLarge { limit } => {
                format!("request body exceeds the {limit}-byte limit")
            }
            HttpError::HeadTooLarge { limit } => {
                format!("request head exceeds the {limit}-byte limit")
            }
            HttpError::Io(e) => format!("connection error: {e}"),
        }
    }
}

/// Read and parse one HTTP/1.x request from `stream`. The stream is also
/// written to in exactly one case: an interim `100 Continue` when the
/// client sent `Expect: 100-continue` and the body is acceptable (curl
/// does this for bodies over 1 KiB and otherwise stalls ~1 s waiting).
pub fn read_request<S: Read + Write>(stream: &mut S, limits: Limits) -> Result<Request, HttpError> {
    let started = std::time::Instant::now();
    let overtime = |started: std::time::Instant| -> Result<(), HttpError> {
        if started.elapsed() > limits.max_request_time {
            Err(HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request took longer than the per-request time ceiling",
            )))
        } else {
            Ok(())
        }
    };
    // Accumulate until the blank line that ends the head. Reads go through
    // a small stack buffer; the head buffer is capped.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        overtime(started)?;
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before the request head completed".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > limits.max_head_bytes {
        return Err(HttpError::HeadTooLarge {
            limit: limits.max_head_bytes,
        });
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method token {method:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: Content-Length only. Chunked encoding is out of scope
    // and explicitly rejected rather than silently misparsed.
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("unparseable Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge {
            limit: limits.max_body_bytes,
        });
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::BadRequest(
            "more body bytes than Content-Length declares".into(),
        ));
    }
    // The body passed the ceiling check: release a waiting client. Sent
    // unconditionally on Expect (RFC 9110 permits it even if the body has
    // already started arriving).
    if headers
        .iter()
        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"))
    {
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| stream.flush())
            .map_err(HttpError::Io)?;
    }
    while body.len() < content_length {
        overtime(started)?;
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body,
    })
}

/// Offset of the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the status codes the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A response ready to be written: status, content type, body, and any
/// extra headers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Additional `(name, value)` headers.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response (the Prometheus exposition content type for
    /// `/metrics` is set by the caller via [`Response::text_with_type`]).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A response with an explicit content type.
    pub fn text_with_type(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// Serialize the response to `stream` (HTTP/1.1, `Connection: close`).
    /// Returns the number of bytes written.
    pub fn write_to<S: Write>(&self, stream: &mut S) -> std::io::Result<u64> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()?;
        Ok(head.len() as u64 + self.body.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test stream: reads from a slice, captures writes (the interim
    /// `100 Continue`).
    struct TestStream<'a> {
        input: &'a [u8],
        written: Vec<u8>,
    }

    impl<'a> TestStream<'a> {
        fn new(input: &'a [u8]) -> Self {
            Self {
                input,
                written: Vec::new(),
            }
        }
    }

    impl Read for TestStream<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.input.len().min(buf.len());
            buf[..n].copy_from_slice(&self.input[..n]);
            self.input = &self.input[n..];
            Ok(n)
        }
    }

    impl Write for TestStream<'_> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn read_str(raw: &str, limits: Limits) -> Result<Request, HttpError> {
        read_request(&mut TestStream::new(raw.as_bytes()), limits)
    }

    fn parse_ok(raw: &str) -> Request {
        read_str(raw, Limits::default()).expect("request parses")
    }

    #[test]
    fn parses_a_simple_get() {
        let r = parse_ok("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_strips_query() {
        let r = parse_ok(
            "POST /v1/models/higgs/predict?verbose=1 HTTP/1.1\r\n\
             Content-Length: 9\r\nX-Priority: high\r\n\r\n[[1,2,3]]",
        );
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/models/higgs/predict");
        assert_eq!(r.body, b"[[1,2,3]]");
        assert_eq!(r.header("x-priority"), Some("high"));
    }

    #[test]
    fn body_split_across_reads_reassembles() {
        // A reader that hands out one byte at a time exercises the
        // incremental head/body accumulation.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        impl Write for OneByte<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let raw = b"PUT /v1/models/m HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let r = read_request(&mut OneByte(raw), Limits::default()).unwrap();
        assert_eq!(r.method, "PUT");
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response() {
        let mut stream = TestStream::new(
            b"POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 4\r\n\r\nbody",
        );
        let r = read_request(&mut stream, Limits::default()).unwrap();
        assert_eq!(r.body, b"body");
        assert_eq!(stream.written, b"HTTP/1.1 100 Continue\r\n\r\n");
        // No Expect header: nothing is written while reading.
        let mut plain = TestStream::new(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody");
        read_request(&mut plain, Limits::default()).unwrap();
        assert!(plain.written.is_empty());
        // An over-limit body is still 413, with no 100 sent first.
        let mut over = TestStream::new(
            b"POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 999\r\n\r\n",
        );
        let got = read_request(
            &mut over,
            Limits {
                max_body_bytes: 64,
                ..Limits::default()
            },
        );
        assert!(matches!(got, Err(HttpError::PayloadTooLarge { .. })));
        assert!(over.written.is_empty());
    }

    #[test]
    fn per_request_time_ceiling_bounds_slow_clients() {
        // A reader that dribbles one byte per call, forever under the
        // per-read timeout but over the per-request ceiling.
        struct Dribble(u8);
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(std::time::Duration::from_millis(2));
                buf[0] = self.0;
                Ok(1)
            }
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let got = read_request(
            &mut Dribble(b'x'),
            Limits {
                max_request_time: std::time::Duration::from_millis(20),
                ..Limits::default()
            },
        );
        match got {
            Err(err @ HttpError::Io(_)) => assert_eq!(err.status(), 408),
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let got = read_str(raw, Limits::default());
            assert!(
                matches!(got, Err(HttpError::BadRequest(_))),
                "{raw:?} must be a bad request, got {got:?}"
            );
        }
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_reading_it() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        let got = read_str(
            raw,
            Limits {
                max_head_bytes: 1024,
                max_body_bytes: 64,
                ..Limits::default()
            },
        );
        assert!(matches!(got, Err(HttpError::PayloadTooLarge { limit: 64 })));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(4096));
        let got = read_str(
            &raw,
            Limits {
                max_head_bytes: 256,
                max_body_bytes: 64,
                ..Limits::default()
            },
        );
        assert!(matches!(got, Err(HttpError::HeadTooLarge { limit: 256 })));
    }

    #[test]
    fn truncated_requests_are_bad_requests() {
        for raw in [
            "GET /x HTTP/1.1\r\n",                               // head never ends
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", // body short
        ] {
            let got = read_str(raw, Limits::default());
            assert!(matches!(got, Err(HttpError::BadRequest(_))), "{raw:?}");
        }
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        let written = Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
        assert_eq!(written as usize, text.len());
    }

    #[test]
    fn error_variants_map_to_their_status_codes() {
        assert_eq!(HttpError::BadRequest("x".into()).status(), 400);
        assert_eq!(HttpError::PayloadTooLarge { limit: 1 }.status(), 413);
        assert_eq!(HttpError::HeadTooLarge { limit: 1 }.status(), 431);
    }
}
