//! Consistent-hash placement: models → replica groups of backend nodes.
//!
//! Each backend is hashed onto a `u64` ring at a configurable number of points
//! (virtual nodes smooth the load split); a model's replica group is the
//! first `replication` *distinct* backends clockwise from the model
//! name's hash. The properties the cluster leans on:
//!
//! * **Stability** — placement is a pure function of `(backend count,
//!   vnodes, key)`. Router restarts, or a second router instance, compute
//!   the same groups with no coordination channel.
//! * **Minimal disruption** — adding a backend moves only the keys that
//!   now hash to it; the rest of the fleet's placement is untouched
//!   (asserted by a test below).
//!
//! Hashing is FNV-1a 64 — stable across platforms and Rust versions,
//! unlike `DefaultHasher`, whose seed is deliberately randomized.

/// FNV-1a 64-bit: stable, dependency-free, good enough dispersion for
/// placement (the vnode count does the smoothing).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// splitmix64 finalizer: FNV-1a alone clusters badly on the near-identical
/// `backend-N/vnode-M` strings (sequential suffixes land on nearby ring
/// points, starving whole backends); one multiply-xorshift avalanche
/// spreads the arcs. Deterministic, so placement stability is preserved.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The ring coordinate of an arbitrary key.
fn point_of(key: &str) -> u64 {
    mix64(fnv1a64(key.as_bytes()))
}

/// A consistent-hash ring over `n_backends` backends.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    n_backends: usize,
}

impl Ring {
    /// Hash `n_backends` backends onto the ring at `vnodes` points each.
    pub fn new(n_backends: usize, vnodes: usize) -> Ring {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(n_backends * vnodes);
        for backend in 0..n_backends {
            for vnode in 0..vnodes {
                let key = format!("backend-{backend}/vnode-{vnode}");
                points.push((point_of(&key), backend));
            }
        }
        points.sort_unstable();
        Ring { points, n_backends }
    }

    /// Number of backends on the ring.
    pub fn n_backends(&self) -> usize {
        self.n_backends
    }

    /// The first `count` distinct backends clockwise from `key`'s hash —
    /// the key's replica group, primary first. Returns fewer when the
    /// ring has fewer than `count` backends.
    pub fn replicas(&self, key: &str, count: usize) -> Vec<usize> {
        if self.points.is_empty() || count == 0 {
            return Vec::new();
        }
        let want = count.min(self.n_backends);
        let hash = point_of(key);
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let mut out = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            if !out.contains(&backend) {
                out.push(backend);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary backend for `key` (first replica).
    pub fn primary(&self, key: &str) -> Option<usize> {
        self.replicas(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hash_is_stable() {
        // Pinned values: placement must never change across builds, or a
        // rolling router upgrade would re-home every model.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"higgs"), fnv1a64(b"higgs"));
        assert_ne!(fnv1a64(b"higgs"), fnv1a64(b"higgz"));
    }

    #[test]
    fn replica_groups_are_distinct_ordered_and_deterministic() {
        let ring = Ring::new(5, 64);
        for key in ["higgs", "susy", "top-quark", "model-x"] {
            let group = ring.replicas(key, 3);
            assert_eq!(group.len(), 3, "{key}");
            let mut dedup = group.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "{key}: replicas must be distinct");
            assert_eq!(group, ring.replicas(key, 3), "{key}: deterministic");
            assert_eq!(group[0], ring.primary(key).unwrap());
        }
    }

    #[test]
    fn replication_caps_at_the_backend_count() {
        let ring = Ring::new(2, 16);
        assert_eq!(ring.replicas("m", 5).len(), 2);
        assert_eq!(Ring::new(0, 16).replicas("m", 2), Vec::<usize>::new());
        assert_eq!(ring.replicas("m", 0), Vec::<usize>::new());
    }

    #[test]
    fn load_spreads_across_backends() {
        let ring = Ring::new(4, 64);
        let mut counts = HashMap::new();
        for i in 0..1000 {
            let primary = ring.primary(&format!("model-{i}")).unwrap();
            *counts.entry(primary).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "every backend is someone's primary");
        for (&backend, &n) in &counts {
            assert!(
                (100..500).contains(&n),
                "backend {backend} owns {n}/1000 keys — vnodes are not smoothing"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction_of_keys() {
        let before = Ring::new(4, 64);
        let after = Ring::new(5, 64);
        let moved = (0..1000)
            .filter(|i| {
                let key = format!("model-{i}");
                before.primary(&key) != after.primary(&key)
            })
            .count();
        // Ideal is 1/5 = 200; generous bounds still exclude modulo-style
        // rehash-everything behavior.
        assert!(
            (50..450).contains(&moved),
            "{moved}/1000 keys moved when adding the 5th backend"
        );
    }
}
