//! # bcpnn-cluster — multi-node serving for the BCPNN stack
//!
//! The single-node story so far: `bcpnn-serve` batches and executes
//! inference in-process, and `bcpnn-gateway` puts an HTTP/1.1 face on
//! one such server. This crate scales that story *out*: many backend
//! nodes, each wrapping its own `ShardedServer`, fronted by a router
//! that speaks the gateway's HTTP protocol to clients and a compact
//! binary protocol to the backends.
//!
//! ```text
//!   client ──HTTP/1.1 (JSON)──▶ RouterHttp ─▶ ClusterRouter
//!                                                │  consistent-hash ring
//!                                                │  (FNV-1a, vnodes)
//!                                ┌───────────────┼───────────────┐
//!                          binary frames    binary frames   binary frames
//!                                ▼               ▼               ▼
//!                          BackendNode     BackendNode     BackendNode
//!                                │               │               │
//!                          ShardedServer   ShardedServer   ShardedServer
//! ```
//!
//! ## Pieces
//!
//! * [`wire`] — the length-prefixed interior protocol: raw f32 rows,
//!   no JSON between router and backend.
//! * [`placement`] — the consistent-hash ring; each model lands on a
//!   replica group of `replication` distinct backends.
//! * [`pool`] — per-backend TCP connection pools with health state.
//! * [`backend`] — a node: TCP listener in front of a
//!   [`bcpnn_serve::ServeTarget`].
//! * [`router`] — fan-out, failover, cluster-wide publish, merged
//!   metrics.
//! * [`httpfront`] — the exterior HTTP surface (the gateway protocol).
//! * [`metrics`] — `bcpnn_cluster_*` Prometheus counters.
//!
//! ## Failure model
//!
//! Transport failures (refused, reset, protocol garbage) mark the
//! backend down and fail over to the next replica; requests are lost
//! only when *every* replica of a model is gone. Application errors
//! (unknown model, shape mismatch, model failure) are authoritative —
//! every replica holds the same artifact bits, so they are returned to
//! the client without retry. A client deadline is a hard budget: when
//! it expires mid-fan-out the router answers `DeadlineExceeded` (HTTP
//! 504) instead of burning the budget on another replica.

#![warn(missing_docs)]

pub mod backend;
pub mod httpfront;
pub mod metrics;
pub mod placement;
pub mod pool;
pub mod router;
pub mod wire;

pub use backend::{BackendConfig, BackendNode};
pub use httpfront::{RouterHttp, RouterHttpConfig};
pub use metrics::ClusterMetrics;
pub use placement::Ring;
pub use pool::BackendPool;
pub use router::{merge_expositions, ClusterConfig, ClusterRouter, LearnOutcome, PublishOutcome};
pub use wire::{ErrorCode, Frame, ModelInfo, RowBlock, WireError};
