//! Router-tier metrics: the `bcpnn_cluster_*` family.
//!
//! These describe the *fan-out layer* — per-backend health, interior-hop
//! latency, failovers, retries — while each backend's own
//! `bcpnn_serve_*` exposition (fetched over the wire and node-labeled by
//! [`crate::router::merge_expositions`]) describes the scheduling behind
//! it. All names live under `bcpnn_cluster_`, disjoint from both, so the
//! merged scrape keeps the one-declaration-per-metric invariant.
//!
//! Like the serve and gateway layers, everything is relaxed atomics.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (seconds) of the fan-out latency histogram buckets; a
/// `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS: [f64; 8] = [0.001, 0.005, 0.01, 0.025, 0.1, 0.5, 1.0, 5.0];

/// Lock-free cluster counters, shared by router workers and the health
/// checker.
#[derive(Debug)]
pub struct ClusterMetrics {
    /// Interior predict calls attempted (one per backend tried).
    fanouts: AtomicU64,
    /// Calls answered successfully.
    fanout_ok: AtomicU64,
    /// Requests that failed over to another replica at least once.
    failovers: AtomicU64,
    /// Individual extra attempts beyond the first (≥ failovers).
    retries: AtomicU64,
    /// Cluster-wide publish broadcasts.
    publishes: AtomicU64,
    /// Per-backend health: 1 up, 0 down (index = backend index).
    backend_up: Vec<AtomicU64>,
    /// Fan-out latency histogram: non-cumulative per-bucket hit counts
    /// (rendered cumulatively), plus sum in microseconds and count.
    latency_hits: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
}

impl ClusterMetrics {
    /// Zeroed metrics for a router over `n_backends` backends.
    pub fn new(n_backends: usize) -> Self {
        Self {
            fanouts: AtomicU64::new(0),
            fanout_ok: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            backend_up: (0..n_backends).map(|_| AtomicU64::new(0)).collect(),
            latency_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
        }
    }

    /// Count one interior call attempt.
    pub fn record_fanout(&self) {
        self.fanouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful interior call and its round-trip latency.
    pub fn record_fanout_ok(&self, latency: Duration) {
        self.fanout_ok.fetch_add(1, Ordering::Relaxed);
        let secs = latency.as_secs_f64();
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_hits[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request that had to leave its first-choice replica.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one extra attempt beyond a request's first.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one cluster-wide publish broadcast.
    pub fn record_publish(&self) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Set backend `i`'s health gauge.
    pub fn set_backend_up(&self, i: usize, up: bool) {
        if let Some(gauge) = self.backend_up.get(i) {
            gauge.store(u64::from(up), Ordering::Relaxed);
        }
    }

    /// Current health gauge of backend `i`.
    pub fn backend_up(&self, i: usize) -> bool {
        self.backend_up
            .get(i)
            .is_some_and(|g| g.load(Ordering::Relaxed) == 1)
    }

    /// Number of backends currently marked up.
    pub fn backends_up(&self) -> usize {
        self.backend_up
            .iter()
            .filter(|g| g.load(Ordering::Relaxed) == 1)
            .count()
    }

    /// Requests that failed over at least once (for tests/ops assertions).
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Render the cluster counters as Prometheus text exposition.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let counters = [
            (
                "fanouts",
                "Interior predict calls attempted (one per backend tried).",
                self.fanouts.load(Ordering::Relaxed),
            ),
            (
                "fanout_ok",
                "Interior predict calls answered successfully.",
                self.fanout_ok.load(Ordering::Relaxed),
            ),
            (
                "failovers",
                "Requests that failed over to another replica.",
                self.failovers.load(Ordering::Relaxed),
            ),
            (
                "retries",
                "Extra interior attempts beyond each request's first.",
                self.retries.load(Ordering::Relaxed),
            ),
            (
                "publishes",
                "Cluster-wide hot-swap broadcasts.",
                self.publishes.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            let full = format!("bcpnn_cluster_{name}_total");
            let _ = writeln!(out, "# HELP {full} {help}");
            let _ = writeln!(out, "# TYPE {full} counter");
            let _ = writeln!(out, "{full} {value}");
        }

        let _ = writeln!(
            out,
            "# HELP bcpnn_cluster_backend_up Backend health from the router's prober (1 up, 0 down)."
        );
        let _ = writeln!(out, "# TYPE bcpnn_cluster_backend_up gauge");
        for (i, gauge) in self.backend_up.iter().enumerate() {
            let _ = writeln!(
                out,
                "bcpnn_cluster_backend_up{{backend=\"{i}\"}} {}",
                gauge.load(Ordering::Relaxed)
            );
        }

        let _ = writeln!(
            out,
            "# HELP bcpnn_cluster_fanout_latency_seconds Interior predict round-trip latency."
        );
        let _ = writeln!(out, "# TYPE bcpnn_cluster_fanout_latency_seconds histogram");
        let mut cumulative = 0u64;
        for (i, &le) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_hits[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "bcpnn_cluster_fanout_latency_seconds_bucket{{le=\"{le}\"}} {cumulative}"
            );
        }
        cumulative += self.latency_hits[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "bcpnn_cluster_fanout_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "bcpnn_cluster_fanout_latency_seconds_sum {}",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "bcpnn_cluster_fanout_latency_seconds_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_valid_and_namespaced() {
        let m = ClusterMetrics::new(2);
        m.record_fanout();
        m.record_fanout_ok(Duration::from_millis(3));
        m.record_fanout();
        m.record_retry();
        m.record_failover();
        m.record_publish();
        m.set_backend_up(0, true);
        let text = m.to_prometheus();
        bcpnn_serve::validate_prometheus(&text).expect("cluster exposition is valid");
        assert!(text.contains("bcpnn_cluster_backend_up{backend=\"0\"} 1"));
        assert!(text.contains("bcpnn_cluster_backend_up{backend=\"1\"} 0"));
        assert!(text.contains("bcpnn_cluster_failovers_total 1"));
        assert!(text.contains("bcpnn_cluster_fanout_latency_seconds_count 1"));
        // Histogram buckets are cumulative: a 3 ms sample is in every
        // bucket from le=0.005 up through +Inf.
        assert!(text.contains("bucket{le=\"0.001\"} 0"));
        assert!(text.contains("bucket{le=\"0.005\"} 1"));
        assert!(text.contains("bucket{le=\"+Inf\"} 1"));
        for line in text.lines().filter(|l| !l.is_empty()) {
            let name = line
                .trim_start_matches("# HELP ")
                .trim_start_matches("# TYPE ");
            assert!(
                name.starts_with("bcpnn_cluster_"),
                "metric outside the cluster namespace: {line:?}"
            );
        }
    }

    #[test]
    fn health_gauges_track_transitions() {
        let m = ClusterMetrics::new(3);
        assert_eq!(m.backends_up(), 0);
        m.set_backend_up(0, true);
        m.set_backend_up(2, true);
        assert_eq!(m.backends_up(), 2);
        assert!(m.backend_up(0) && !m.backend_up(1) && m.backend_up(2));
        m.set_backend_up(0, false);
        assert_eq!(m.backends_up(), 1);
        // Out-of-range index is ignored, not a panic.
        m.set_backend_up(9, true);
        assert!(!m.backend_up(9));
    }
}
