//! The router's exterior HTTP/1.1 surface: the gateway protocol, served
//! by the cluster.
//!
//! Clients keep speaking exactly what the single-node `bcpnn-gateway`
//! speaks — same routes, same JSON shapes, same error mapping — so
//! pointing a load balancer (or an existing client) at a router instead
//! of a gateway is a config change, not a code change. The parser,
//! router, JSON codec, and error model are literally the gateway's
//! ([`bcpnn_gateway::http`], [`bcpnn_gateway::router`],
//! [`bcpnn_gateway::json`], [`bcpnn_gateway::error`]); only the handlers
//! differ:
//!
//! * `POST /v1/models/{name}/predict` sends the **whole row batch in one
//!   interior `Predict` frame** — batching on the wire is the interior
//!   protocol's point — and fails over per [`crate::router`].
//! * `PUT /v1/models/{name}` broadcasts the hot-swap to every replica
//!   and reports each node's outcome.
//! * `POST /v1/models/{name}/learn` broadcasts the labeled rows to every
//!   replica's online learner and reports each node's outcome (replicas
//!   must all fold the same rows to stay bit-identical).
//! * `GET /metrics` returns the merged cluster scrape.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bcpnn_gateway::error::ApiError;
use bcpnn_gateway::http::{read_request, Limits, Request, Response};
use bcpnn_gateway::json::{self, Json};
use bcpnn_gateway::router::{route, Route, RouteError};
use bcpnn_serve::{Priority, SubmitOptions};

use crate::router::ClusterRouter;
use crate::wire::{ErrorCode, RowBlock};

/// HTTP front configuration.
#[derive(Debug, Clone)]
pub struct RouterHttpConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Request head/body byte ceilings.
    pub limits: Limits,
    /// Socket read/write timeout per connection.
    pub read_timeout: Duration,
}

impl Default for RouterHttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
        }
    }
}

struct FrontShared {
    router: Arc<ClusterRouter>,
    limits: Limits,
    read_timeout: Duration,
    shutdown: AtomicBool,
}

/// The running HTTP front over a [`ClusterRouter`]. One handler thread
/// per connection, one request per connection (`Connection: close`),
/// exactly like the gateway's wire contract.
pub struct RouterHttp {
    local_addr: SocketAddr,
    shared: Arc<FrontShared>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHttp {
    /// Bind `config.addr` and serve the cluster.
    pub fn start(
        router: Arc<ClusterRouter>,
        config: RouterHttpConfig,
    ) -> std::io::Result<RouterHttp> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(FrontShared {
            router,
            limits: config.limits,
            read_timeout: config.read_timeout,
            shutdown: AtomicBool::new(false),
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("bcpnn-cluster-http-accept".into())
                .spawn(move || run_accept(&listener, &shared, &handlers))
                .expect("failed to spawn cluster HTTP accept thread")
        };
        Ok(RouterHttp {
            local_addr,
            shared,
            accept: Some(accept),
            handlers,
        })
    }

    /// The address the front actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The cluster behind this front.
    pub fn router(&self) -> &Arc<ClusterRouter> {
        &self.shared.router
    }
}

impl Drop for RouterHttp {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handler in self.handlers.lock().unwrap().drain(..) {
            let _ = handler.join();
        }
    }
}

impl std::fmt::Debug for RouterHttp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHttp")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn run_accept(
    listener: &TcpListener,
    shared: &Arc<FrontShared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("bcpnn-cluster-http-conn".into())
            .spawn(move || handle_connection(&shared, stream))
            .expect("failed to spawn cluster HTTP connection thread");
        handlers.lock().unwrap().push(handle);
    }
}

/// Serve exactly one request on `stream` and close it.
fn handle_connection(shared: &FrontShared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let response = match read_request(&mut stream, shared.limits) {
        Ok(request) => dispatch(shared, &request),
        Err(err) => ApiError::new(err.status(), err.message()).into_response(),
    };
    let _ = response.write_to(&mut stream);
}

fn dispatch(shared: &FrontShared, request: &Request) -> Response {
    let endpoint = match route(&request.method, &request.path) {
        Ok(endpoint) => endpoint,
        Err(RouteError::NotFound) => {
            return ApiError::new(404, format!("no endpoint at {:?}", request.path)).into_response()
        }
        Err(RouteError::MethodNotAllowed(allow)) => {
            let mut err = ApiError::new(
                405,
                format!("{} is not allowed here (allow: {allow})", request.method),
            );
            err.allow = Some(allow);
            return err.into_response();
        }
        Err(RouteError::BadModelName(name)) => {
            return ApiError::new(400, format!("invalid model name {name:?}")).into_response()
        }
    };
    let router = &shared.router;
    match endpoint {
        Route::Healthz => handle_healthz(router),
        Route::Metrics => Response::text_with_type(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            router.merged_prometheus(),
        ),
        Route::ListModels => handle_list_models(router),
        Route::Predict(name) => {
            handle_predict(router, &name, request).unwrap_or_else(ApiError::into_response)
        }
        Route::Publish(name) => {
            handle_publish(router, &name, request).unwrap_or_else(ApiError::into_response)
        }
        Route::Learn(name) => {
            handle_learn(router, &name, request).unwrap_or_else(ApiError::into_response)
        }
    }
}

/// `GET /healthz`: ok while at least one backend is in rotation, plus
/// the live replica picture for operators.
fn handle_healthz(router: &ClusterRouter) -> Response {
    let up = router.cluster_metrics().backends_up();
    let total = router.backends().len();
    let status = if up > 0 { "ok" } else { "degraded" };
    let body = Json::Obj(vec![
        ("status".into(), Json::str(status)),
        ("backends_up".into(), Json::u64(up as u64)),
        ("backends".into(), Json::u64(total as u64)),
    ]);
    Response::json(if up > 0 { 200 } else { 503 }, body.render())
}

/// `GET /v1/models`: the merged cluster listing, each model annotated
/// with its replica group.
fn handle_list_models(router: &ClusterRouter) -> Response {
    let models: Vec<Json> = router
        .models()
        .into_iter()
        .map(|m| {
            let replicas = router
                .replicas_for(&m.name)
                .into_iter()
                .map(|b| Json::u64(b as u64))
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::str(m.name)),
                ("version".into(), Json::u64(m.version)),
                ("n_inputs".into(), Json::u64(u64::from(m.n_inputs))),
                ("n_classes".into(), Json::u64(u64::from(m.n_classes))),
                ("replicas".into(), Json::Arr(replicas)),
            ])
        })
        .collect();
    Response::json(
        200,
        Json::Obj(vec![("models".into(), Json::Arr(models))]).render(),
    )
}

/// Parse `X-Priority` / `X-Deadline-Ms` / `X-Abstain-Below` (the
/// gateway's header contract).
fn options_from_headers(request: &Request) -> Result<SubmitOptions, ApiError> {
    let mut options = SubmitOptions::new();
    if let Some(priority) = request.header("x-priority") {
        options = options.priority(match priority.to_ascii_lowercase().as_str() {
            "high" => Priority::High,
            "normal" => Priority::Normal,
            "low" => Priority::Low,
            other => {
                return Err(ApiError::new(
                    400,
                    format!("invalid X-Priority {other:?} (use high, normal, or low)"),
                ))
            }
        });
    }
    if let Some(deadline) = request.header("x-deadline-ms") {
        let millis: u64 = deadline.parse().map_err(|_| {
            ApiError::new(
                400,
                format!("invalid X-Deadline-Ms {deadline:?} (use integer milliseconds)"),
            )
        })?;
        options = options.deadline(Duration::from_millis(millis));
    }
    if let Some(threshold) = request.header("x-abstain-below") {
        let parsed: f32 = threshold.trim().parse().map_err(|_| {
            ApiError::new(
                400,
                format!("invalid X-Abstain-Below {threshold:?} (use a number in [0, 1])"),
            )
        })?;
        if !parsed.is_finite() || !(0.0..=1.0).contains(&parsed) {
            return Err(ApiError::new(
                400,
                format!("invalid X-Abstain-Below {threshold:?} (must be finite and in [0, 1])"),
            ));
        }
        options = options.abstain_below(parsed);
    }
    Ok(options)
}

/// `POST /v1/models/{name}/predict`: JSON rows in, probabilities out —
/// one interior frame per request, failover per the router's rules.
fn handle_predict(
    router: &ClusterRouter,
    name: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let options = options_from_headers(request)?;
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "request body is not valid UTF-8"))?;
    let rows = json::parse_f32_rows(body).map_err(|e| ApiError::new(400, e.to_string()))?;
    let block = RowBlock::from_rows(&rows);

    let (version, proba, abstained_rows) = router
        .predict_rows(name, block, &options)
        .map_err(ApiError::from)?;
    // Same in-band abstention and uncertainty contract as the single-node
    // gateway: abstained rows carry `null` prediction/uncertainty, and
    // entropy/margin are recomputed here from the wire's raw `f32` rows
    // with the shared `bcpnn_core::uncertainty` kernels — bit-identical
    // to what a gateway colocated with the model would report.
    let mut predictions = Vec::with_capacity(proba.n_rows());
    let mut uncertainty = Vec::with_capacity(proba.n_rows());
    let mut abstained = Vec::with_capacity(proba.n_rows());
    for i in 0..proba.n_rows() {
        if abstained_rows.contains(&(i as u32)) {
            predictions.push(Json::Null);
            uncertainty.push(Json::Null);
            abstained.push(Json::Bool(true));
        } else {
            let row = proba.row(i);
            uncertainty.push(Json::Obj(vec![
                (
                    "entropy".into(),
                    Json::f32(bcpnn_core::uncertainty::entropy(row)),
                ),
                (
                    "margin".into(),
                    Json::f32(bcpnn_core::uncertainty::margin(row)),
                ),
            ]));
            predictions.push(Json::Arr(row.iter().copied().map(Json::f32).collect()));
            abstained.push(Json::Bool(false));
        }
    }
    let body = Json::Obj(vec![
        ("model".into(), Json::str(name)),
        ("version".into(), version.map_or(Json::Null, Json::u64)),
        ("predictions".into(), Json::Arr(predictions)),
        ("uncertainty".into(), Json::Arr(uncertainty)),
        ("abstained".into(), Json::Arr(abstained)),
    ]);
    Ok(Response::json(200, body.render()))
}

/// The HTTP status a per-node publish refusal maps to.
fn publish_failure_status(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::Forbidden => 403,
        // The node could not load the artifact: unprocessable content,
        // the same answer the single-node gateway gives.
        ErrorCode::Io => 422,
        ErrorCode::BadRequest => 400,
        ErrorCode::Disconnected => 502,
        _ => 500,
    }
}

/// `PUT /v1/models/{name}`: broadcast the hot-swap to every replica and
/// report per-node outcomes. `200` only when every replica swapped; any
/// refusal sets the overall status to the first failure's mapping.
fn handle_publish(
    router: &ClusterRouter,
    name: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "request body is not valid UTF-8"))?;
    let doc = json::parse(body).map_err(|e| ApiError::new(400, e.to_string()))?;
    let path = doc
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new(400, "missing string field \"path\""))?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::new(400, "missing integer field \"version\""))?;
    let backend_byte = match doc.get("backend").and_then(Json::as_str) {
        None => 1,
        Some("naive") => 0,
        Some("parallel") => 1,
        Some(_) => {
            return Err(ApiError::new(
                400,
                "field \"backend\" must be \"naive\" or \"parallel\"",
            ))
        }
    };

    let outcomes = router.publish(name, path, version, backend_byte);
    let mut status = 200u16;
    let results: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![
                ("backend".into(), Json::u64(o.backend as u64)),
                ("addr".into(), Json::str(o.addr.to_string())),
            ];
            match &o.result {
                Ok((version, displaced)) => {
                    fields.push(("ok".into(), Json::Bool(true)));
                    fields.push(("version".into(), Json::u64(*version)));
                    fields.push((
                        "displaced_version".into(),
                        displaced.map_or(Json::Null, Json::u64),
                    ));
                }
                Err((code, message)) => {
                    if status == 200 {
                        status = publish_failure_status(*code);
                    }
                    fields.push(("ok".into(), Json::Bool(false)));
                    fields.push((
                        "status".into(),
                        Json::u64(u64::from(publish_failure_status(*code))),
                    ));
                    fields.push(("error".into(), Json::str(message.clone())));
                }
            }
            Json::Obj(fields)
        })
        .collect();
    let body = Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("version".into(), Json::u64(version)),
        ("results".into(), Json::Arr(results)),
    ]);
    Ok(Response::json(status, body.render()))
}

/// The HTTP status a per-node learn refusal maps to.
fn learn_failure_status(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::UnknownModel => 404,
        ErrorCode::Overloaded => 429,
        ErrorCode::Disconnected => 502,
        ErrorCode::BadRequest | ErrorCode::ShapeMismatch => 400,
        _ => 500,
    }
}

/// `POST /v1/models/{name}/learn`: same JSON contract as the single-node
/// gateway (`{"rows": [[...]], "labels": [...]}`), broadcast to every
/// replica's learner. `200` only when every replica accepted; any
/// refusal sets the overall status to the first failure's mapping.
fn handle_learn(
    router: &ClusterRouter,
    name: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "request body is not valid UTF-8"))?;
    let doc = json::parse(body).map_err(|e| ApiError::new(400, e.to_string()))?;
    let rows_json = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::new(400, "missing array field \"rows\""))?;
    let mut rows = Vec::with_capacity(rows_json.len());
    for row in rows_json {
        let cells = row
            .as_array()
            .ok_or_else(|| ApiError::new(400, "\"rows\" must be an array of arrays"))?;
        let mut features = Vec::with_capacity(cells.len());
        for cell in cells {
            let value = match cell {
                Json::Num(n) => n.as_f32(),
                _ => None,
            };
            features
                .push(value.ok_or_else(|| ApiError::new(400, "rows must contain finite numbers"))?);
        }
        rows.push(features);
    }
    if rows.is_empty() {
        return Err(ApiError::new(400, "\"rows\" must not be empty"));
    }
    let width = rows[0].len();
    if width == 0 || rows.iter().any(|r| r.len() != width) {
        return Err(ApiError::new(
            400,
            "\"rows\" must be non-empty and rectangular",
        ));
    }
    let labels_json = doc
        .get("labels")
        .and_then(Json::as_array)
        .ok_or_else(|| ApiError::new(400, "missing array field \"labels\""))?;
    if labels_json.len() != rows.len() {
        return Err(ApiError::new(
            400,
            format!(
                "{} labels for {} rows; counts must match",
                labels_json.len(),
                rows.len()
            ),
        ));
    }
    let mut labels = Vec::with_capacity(labels_json.len());
    for label in labels_json {
        let value = label
            .as_u64()
            .filter(|&v| v <= u64::from(u32::MAX))
            .ok_or_else(|| {
                ApiError::new(400, "\"labels\" must be an array of non-negative integers")
            })?;
        labels.push(value as u32);
    }

    let outcomes = router.learn(name, RowBlock::from_rows(&rows), labels);
    if outcomes.is_empty() {
        return Err(ApiError::new(502, "no backend nodes are configured"));
    }
    let mut status = 200u16;
    let results: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![
                ("backend".into(), Json::u64(o.backend as u64)),
                ("addr".into(), Json::str(o.addr.to_string())),
            ];
            match &o.result {
                Ok((accepted, queue_depth)) => {
                    fields.push(("ok".into(), Json::Bool(true)));
                    fields.push(("accepted".into(), Json::u64(*accepted)));
                    fields.push(("queue_depth".into(), Json::u64(*queue_depth)));
                }
                Err((code, message)) => {
                    if status == 200 {
                        status = learn_failure_status(*code);
                    }
                    fields.push(("ok".into(), Json::Bool(false)));
                    fields.push((
                        "status".into(),
                        Json::u64(u64::from(learn_failure_status(*code))),
                    ));
                    fields.push(("error".into(), Json::str(message.clone())));
                }
            }
            Json::Obj(fields)
        })
        .collect();
    let body = Json::Obj(vec![
        ("model".into(), Json::str(name)),
        ("rows".into(), Json::u64(rows.len() as u64)),
        ("results".into(), Json::Arr(results)),
    ]);
    Ok(Response::json(status, body.render()))
}
