//! `bcpnn-cluster` demo: train a Higgs classifier, replicate it across a
//! small cluster of backend nodes, and front them with a router speaking
//! the gateway's HTTP protocol.
//!
//! ```text
//! cluster_demo [--addr HOST:PORT] [--backends N] [--replication N]
//!              [--shards N] [--train-samples N] [--model-dir DIR]
//!              [--port-file PATH] [--self-test]
//! ```
//!
//! By default the router binds an ephemeral port, prints a curl
//! walkthrough, and serves until killed — the shape the CI `cluster` job
//! drives (`--port-file` publishes the chosen port). `--self-test`
//! instead runs the walkthrough in-process through the bundled HTTP
//! client, including a cluster-wide hot-swap, and exits non-zero on any
//! failure.

use std::path::PathBuf;
use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_cluster::{
    BackendConfig, BackendNode, ClusterConfig, ClusterRouter, RouterHttp, RouterHttpConfig,
};
use bcpnn_core::{Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_gateway::client;
use bcpnn_learn::{LearnerConfig, OnlineLearner};
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_serve::{ModelRegistry, Pipeline, ServeTarget, ServedModel, ShardConfig, ShardedServer};

struct Args {
    addr: String,
    backends: usize,
    replication: usize,
    shards: usize,
    train_samples: usize,
    model_dir: PathBuf,
    port_file: Option<PathBuf>,
    self_test: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:0".to_string(),
            backends: 2,
            replication: 2,
            shards: 1,
            train_samples: 2000,
            model_dir: std::env::temp_dir().join("bcpnn-cluster-demo"),
            port_file: None,
            self_test: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |what: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("error: {flag} needs a {what}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--addr" => args.addr = value("host:port"),
                "--backends" => args.backends = parse_num(&flag, &value("count")),
                "--replication" => args.replication = parse_num(&flag, &value("count")),
                "--shards" => args.shards = parse_num(&flag, &value("count")),
                "--train-samples" => args.train_samples = parse_num(&flag, &value("count")),
                "--model-dir" => args.model_dir = PathBuf::from(value("directory")),
                "--port-file" => args.port_file = Some(PathBuf::from(value("path"))),
                "--self-test" => args.self_test = true,
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        if args.backends == 0 {
            eprintln!("error: --backends must be at least 1");
            std::process::exit(2);
        }
        args
    }
}

fn parse_num(flag: &str, raw: &str) -> usize {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} needs a number, got {raw:?}");
        std::process::exit(2);
    })
}

/// Train one model version on synthetic Higgs data.
fn train_version(n_samples: usize, seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples,
        seed,
        ..Default::default()
    });
    let (pipeline, _report) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training on synthetic data succeeds");
    pipeline
}

fn main() {
    let args = Args::parse();
    println!("== bcpnn-cluster demo ==");
    println!(
        "training v1 (served) and v2 (saved for hot-swap) on {} synthetic Higgs collisions each...",
        args.train_samples
    );
    let v1_dir = args.model_dir.join("higgs-v1");
    let v2_dir = args.model_dir.join("higgs-v2");
    train_version(args.train_samples, 1)
        .save(&v1_dir)
        .expect("saving the v1 artifact succeeds");
    train_version(args.train_samples, 2)
        .save(&v2_dir)
        .expect("saving the v2 artifact succeeds");

    // Every backend loads the same saved artifact, so all replicas hold
    // bit-identical model state — the property that makes failover
    // invisible to clients. Each node also serves the int8-quantized twin
    // and runs an online learner for "higgs" (the router broadcasts learn
    // traffic to every replica, so the shadows advance in lockstep).
    let mut nodes = Vec::with_capacity(args.backends);
    let mut learners = Vec::with_capacity(args.backends);
    for i in 0..args.backends {
        let pipeline =
            Pipeline::load(&v1_dir, BackendKind::Parallel).expect("loading the v1 artifact");
        let int8 = QuantizedPipeline::quantize(&pipeline, QuantPrecision::Int8)
            .expect("int8 quantization succeeds");
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline.clone()));
        registry.publish(ServedModel::new("higgs-int8", 1, int8));
        let state_dir = args.model_dir.join(format!("learn-state-{i}"));
        // The demo retrains from scratch every run; a previous run's
        // learner state describes a different base model.
        let _ = std::fs::remove_dir_all(&state_dir);
        let learner = Arc::new(
            OnlineLearner::start(
                Arc::clone(&registry),
                "higgs",
                &pipeline,
                LearnerConfig {
                    state_dir,
                    backend: BackendKind::Parallel,
                    ..LearnerConfig::default()
                },
            )
            .expect("online learner starts"),
        );
        let server = Arc::new(ShardedServer::start(
            registry,
            ShardConfig::new(args.shards),
        ));
        let node = BackendNode::start_with_learners(
            server as Arc<dyn ServeTarget>,
            BackendConfig {
                artifact_root: Some(args.model_dir.clone()),
                ..BackendConfig::default()
            },
            vec![Arc::clone(&learner)],
        )
        .expect("backend node binds");
        nodes.push(node);
        learners.push(learner);
    }

    let router = Arc::new(ClusterRouter::start(ClusterConfig {
        backends: nodes.iter().map(|n| n.local_addr()).collect(),
        default_replication: args.replication,
        ..ClusterConfig::default()
    }));
    let front = RouterHttp::start(
        Arc::clone(&router),
        RouterHttpConfig {
            addr: args.addr.clone(),
            ..RouterHttpConfig::default()
        },
    )
    .expect("router HTTP front binds");
    let addr = front.local_addr();
    if let Some(port_file) = &args.port_file {
        std::fs::write(port_file, addr.port().to_string()).expect("port file is writable");
    }

    // One example row so the walkthrough's predict body is copy-pasteable.
    let sample = generate(&SyntheticHiggsConfig {
        n_samples: 1,
        seed: 42,
        ..Default::default()
    });
    let row: Vec<String> = sample
        .features
        .row(0)
        .iter()
        .map(|v| v.to_string())
        .collect();
    let row_json = format!("[[{}]]", row.join(","));

    println!();
    println!(
        "router listening on http://{addr} ({} backends, replication {}, {} shards each)",
        args.backends,
        args.replication.min(args.backends),
        args.shards
    );
    for (i, node) in nodes.iter().enumerate() {
        println!(
            "  backend {i}: {} (binary interior protocol)",
            node.local_addr()
        );
    }
    println!();
    println!("== curl walkthrough ==");
    println!("# liveness + replica picture");
    println!("curl -s http://{addr}/healthz");
    println!("# merged cluster listing (each model names its replica group)");
    println!("curl -s http://{addr}/v1/models");
    println!("# predict: fanned to the model's replica group with failover");
    println!(
        "curl -s -X POST http://{addr}/v1/models/higgs/predict \\\n     -H 'X-Priority: high' -H 'X-Deadline-Ms: 250' \\\n     -d '{row_json}'"
    );
    println!("# same row through the int8-quantized artifact every node also serves");
    println!("curl -s -X POST http://{addr}/v1/models/higgs-int8/predict -d '{row_json}'");
    println!("# learn: labeled rows broadcast to every replica's online learner");
    println!(
        "curl -s -X POST http://{addr}/v1/models/higgs/learn \\\n     -d '{{\"rows\":{row_json},\"labels\":[1]}}'"
    );
    println!("# merged Prometheus scrape: per-node serving + learn + bcpnn_cluster_* counters");
    println!(
        "curl -s http://{addr}/metrics | grep -E 'bcpnn_cluster_backend_up|fanout|learn_rows'"
    );
    println!("# cluster-wide hot-swap: every replica loads the saved v2 artifact");
    println!(
        "curl -s -X PUT http://{addr}/v1/models/higgs \\\n     -d '{{\"path\":\"{}\",\"version\":2,\"backend\":\"parallel\"}}'",
        v2_dir.display()
    );
    println!();

    if args.self_test {
        run_self_test(addr, &row_json, &v2_dir, args.backends, &learners);
        return;
    }

    println!("serving until killed (ctrl-c)...");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Drive the walkthrough through the bundled client and verify each step.
fn run_self_test(
    addr: std::net::SocketAddr,
    row_json: &str,
    v2_dir: &std::path::Path,
    backends: usize,
    learners: &[Arc<OnlineLearner>],
) {
    println!("== self-test ==");
    let mut ok = true;
    let mut check = |what: &str, passed: bool| {
        println!("{} {what}", if passed { "ok  " } else { "FAIL" });
        ok &= passed;
    };

    let health = client::request(addr, "GET", "/healthz", &[], b"").expect("healthz responds");
    check(
        "healthz is 200 with every backend up",
        health.status == 200
            && health
                .body_str()
                .contains(&format!("\"backends_up\":{backends}")),
    );

    let predict = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Priority", "high"), ("X-Deadline-Ms", "2000")],
        row_json.as_bytes(),
    )
    .expect("predict responds");
    check(
        "predict is 200 with v1 predictions",
        predict.status == 200 && predict.body_str().contains("\"version\":1"),
    );

    let int8 = client::request(
        addr,
        "POST",
        "/v1/models/higgs-int8/predict",
        &[],
        row_json.as_bytes(),
    )
    .expect("int8 predict responds");
    check(
        "int8-quantized predict is 200 with predictions",
        int8.status == 200 && int8.body_str().contains("\"predictions\""),
    );

    let swap_body = format!(
        "{{\"path\":\"{}\",\"version\":2,\"backend\":\"parallel\"}}",
        v2_dir.display()
    );
    let swap = client::request(addr, "PUT", "/v1/models/higgs", &[], swap_body.as_bytes())
        .expect("swap responds");
    check(
        "cluster-wide hot-swap is 200 with every replica displacing v1",
        swap.status == 200
            && swap.body_str().contains("\"displaced_version\":1")
            && !swap.body_str().contains("\"ok\":false"),
    );

    let models = client::request(addr, "GET", "/v1/models", &[], b"").expect("listing responds");
    check(
        "listing shows version 2 with its replica group",
        models.status == 200
            && models.body_str().contains("\"version\":2")
            && models.body_str().contains("\"replicas\""),
    );

    let forbidden = client::request(
        addr,
        "PUT",
        "/v1/models/higgs",
        &[],
        b"{\"path\":\"/etc/passwd\",\"version\":3,\"backend\":\"parallel\"}",
    )
    .expect("forbidden swap responds");
    check(
        "publish outside the artifact root is 403",
        forbidden.status == 403,
    );

    let metrics = client::request(addr, "GET", "/metrics", &[], b"").expect("metrics responds");
    let text = metrics.body_str();
    check(
        "merged scrape is a valid exposition",
        metrics.status == 200 && bcpnn_serve::validate_prometheus(&text).is_ok(),
    );
    check(
        "scrape exports cluster gauges and per-node serving metrics",
        text.contains("bcpnn_cluster_backend_up") && text.contains("node=\"0\""),
    );

    let missing = client::request(addr, "POST", "/v1/models/ghost/predict", &[], b"[[1]]")
        .expect("unknown model responds");
    check("unknown model is 404", missing.status == 404);

    // Learn broadcast: 200 labeled rows fan out to every replica's
    // online learner. The default publish threshold (1024 rows) is far
    // above this, so the stream folds into the shadows without touching
    // the served version the earlier checks pinned down.
    let learn_data = generate(&SyntheticHiggsConfig {
        n_samples: 200,
        seed: 5,
        ..Default::default()
    });
    let learn_rows: Vec<String> = (0..200)
        .map(|r| {
            let cells: Vec<String> = learn_data
                .features
                .row(r)
                .iter()
                .map(|v| v.to_string())
                .collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    let learn_labels: Vec<String> = learn_data.labels.iter().map(|l| l.to_string()).collect();
    let learn_body = format!(
        "{{\"rows\":[{}],\"labels\":[{}]}}",
        learn_rows.join(","),
        learn_labels.join(",")
    );
    let learn = client::request(
        addr,
        "POST",
        "/v1/models/higgs/learn",
        &[],
        learn_body.as_bytes(),
    )
    .expect("learn responds");
    let learn_text = learn.body_str();
    check(
        "learn broadcast is 200 with every replica accepting the rows",
        learn.status == 200
            && learn_text.contains("\"accepted\":200")
            && !learn_text.contains("\"ok\":false"),
    );
    for learner in learners {
        learner.drain();
    }
    let learn_metrics =
        client::request(addr, "GET", "/metrics", &[], b"").expect("metrics responds");
    let learn_scrape = learn_metrics.body_str();
    check(
        "merged scrape gains node-labeled learn families and stays valid",
        learn_metrics.status == 200
            && bcpnn_serve::validate_prometheus(&learn_scrape).is_ok()
            && learn_scrape.contains("bcpnn_learn_rows_total{node=\"0\",model=\"higgs\"} 200"),
    );

    println!();
    println!(
        "{}",
        if ok {
            "OK: cluster walkthrough verified"
        } else {
            "FAILED: see steps above"
        }
    );
    std::process::exit(i32::from(!ok));
}
