//! The router tier: consistent-hash placement, health-checked connection
//! pools, replica failover, and cluster-wide publish/metrics fan-out.
//!
//! A [`ClusterRouter`] owns one [`BackendPool`] per backend node and a
//! [`Ring`] that maps each model name to its replica group. Predict
//! traffic goes to the group's first healthy member and **fails over**
//! to the next replica on transport-level failures; application-level
//! errors (unknown model, shape mismatch, deadline) never fail over —
//! the next replica would answer the same thing, or the client's time
//! budget is already spent.
//!
//! ## Timeout semantics
//!
//! * Request carries a client deadline → the deadline is also the wire
//!   timeout, and expiry maps to [`ServeError::DeadlineExceeded`] (HTTP
//!   504 through `bcpnn_gateway::status_of`), with **no** failover: a
//!   replica retry cannot un-spend the client's budget.
//! * No deadline → the configured
//!   [`request_timeout`](ClusterConfig::request_timeout) applies; expiry
//!   is treated as a backend failure: mark it out of rotation, fail over,
//!   and only after every replica is exhausted report
//!   [`ServeError::Io`] (HTTP 502).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bcpnn_serve::{
    MetricsSnapshot, ModelRegistry, PredictionHandle, ServeError, ServeResult, ServeTarget,
    ServingMetrics, SubmitOptions,
};

use crate::metrics::ClusterMetrics;
use crate::placement::Ring;
use crate::pool::BackendPool;
use crate::wire::{
    decode_serve_error, encode_options, ErrorCode, Frame, ModelInfo, RowBlock, DEFAULT_MAX_PAYLOAD,
};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Backend node addresses, in placement order. Index = backend id in
    /// metrics labels and publish reports.
    pub backends: Vec<SocketAddr>,
    /// Replica-group size for models without an override (capped at the
    /// backend count).
    pub default_replication: usize,
    /// Per-model replication overrides.
    pub replication_overrides: Vec<(String, usize)>,
    /// Virtual nodes per backend on the placement ring.
    pub vnodes: usize,
    /// TCP connect timeout for interior dials. Default 1 s.
    pub connect_timeout: Duration,
    /// Wire timeout for requests that carry no client deadline.
    /// Default 10 s.
    pub request_timeout: Duration,
    /// Wire timeout for health probes. Default 500 ms.
    pub probe_timeout: Duration,
    /// Period of the background health checker. Default 250 ms.
    pub health_interval: Duration,
    /// Grace added to a client deadline to form the socket timeout on a
    /// deadlined predict. A live backend answers an expired deadline with
    /// its own typed `DeadlineExceeded` (authoritative, no failover); the
    /// grace lets that reply arrive, so only a *hung* backend trips the
    /// socket timeout. It also keeps the timeout nonzero — a zero read
    /// timeout is an invalid socket option, not "fail immediately".
    /// Default 50 ms.
    pub deadline_grace: Duration,
    /// Slice width for the health checker's interruptible sleep between
    /// probe rounds; bounds how long shutdown can block on the health
    /// thread. Default 10 ms.
    pub shutdown_poll: Duration,
    /// Idle interior connections kept per backend.
    pub max_idle_conns: usize,
    /// Ceiling on interior frame payloads.
    pub max_payload: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            backends: Vec::new(),
            default_replication: 2,
            replication_overrides: Vec::new(),
            vnodes: 64,
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            probe_timeout: Duration::from_millis(500),
            health_interval: Duration::from_millis(250),
            deadline_grace: Duration::from_millis(50),
            shutdown_poll: Duration::from_millis(10),
            max_idle_conns: 8,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Per-node outcome of a cluster-wide publish broadcast.
#[derive(Debug, Clone)]
pub struct PublishOutcome {
    /// Backend index the outcome is for.
    pub backend: usize,
    /// That backend's address.
    pub addr: SocketAddr,
    /// `Ok((version, displaced))` or the node's typed refusal.
    pub result: Result<(u64, Option<u64>), (ErrorCode, String)>,
}

/// Per-node outcome of a learn broadcast to a model's replica group.
#[derive(Debug, Clone)]
pub struct LearnOutcome {
    /// Backend index the outcome is for.
    pub backend: usize,
    /// That backend's address.
    pub addr: SocketAddr,
    /// `Ok((accepted, queue_depth))` or the node's typed refusal.
    pub result: Result<(u64, u64), (ErrorCode, String)>,
}

/// The running router tier (no HTTP listener of its own — see
/// [`crate::httpfront::RouterHttp`] for the exterior surface).
pub struct ClusterRouter {
    config: ClusterConfig,
    ring: Ring,
    pools: Vec<Arc<BackendPool>>,
    metrics: Arc<ClusterMetrics>,
    /// Local placeholder so the [`ServeTarget`] surface has a registry to
    /// hand out; models live on the backends, not here.
    placeholder: Arc<ModelRegistry>,
    /// Zeroed local serving counters backing [`ServeTarget::metrics`].
    local: ServingMetrics,
    nonce: AtomicU64,
    shutdown: Arc<AtomicBool>,
    health: Option<JoinHandle<()>>,
}

impl ClusterRouter {
    /// Build pools and the placement ring, probe every backend once
    /// synchronously (so health gauges are meaningful immediately), and
    /// start the background health checker.
    pub fn start(config: ClusterConfig) -> ClusterRouter {
        let ring = Ring::new(config.backends.len(), config.vnodes);
        let pools: Vec<Arc<BackendPool>> = config
            .backends
            .iter()
            .map(|&addr| {
                Arc::new(BackendPool::new(
                    addr,
                    config.connect_timeout,
                    config.max_idle_conns,
                    config.max_payload,
                ))
            })
            .collect();
        let metrics = Arc::new(ClusterMetrics::new(pools.len()));
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut router = ClusterRouter {
            config,
            ring,
            pools,
            metrics,
            placeholder: Arc::new(ModelRegistry::new()),
            local: ServingMetrics::default(),
            nonce: AtomicU64::new(1),
            shutdown,
            health: None,
        };
        router.probe_all();
        router.health = Some({
            let pools = router.pools.clone();
            let metrics = Arc::clone(&router.metrics);
            let shutdown = Arc::clone(&router.shutdown);
            let interval = router.config.health_interval;
            let probe_timeout = router.config.probe_timeout;
            let poll = router.config.shutdown_poll.max(Duration::from_millis(1));
            let nonce = AtomicU64::new(1 << 32);
            std::thread::Builder::new()
                .name("bcpnn-cluster-health".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        for (i, pool) in pools.iter().enumerate() {
                            let n = nonce.fetch_add(1, Ordering::Relaxed);
                            probe(pool, i, n, probe_timeout, &metrics);
                        }
                        // Sleep in slices so shutdown stays prompt.
                        let deadline = Instant::now() + interval;
                        while Instant::now() < deadline && !shutdown.load(Ordering::SeqCst) {
                            std::thread::sleep(poll);
                        }
                    }
                })
                .expect("failed to spawn cluster health thread")
        });
        router
    }

    /// Probe every backend once, updating pools and gauges.
    fn probe_all(&self) {
        for (i, pool) in self.pools.iter().enumerate() {
            let n = self.nonce.fetch_add(1, Ordering::Relaxed);
            probe(pool, i, n, self.config.probe_timeout, &self.metrics);
        }
    }

    /// The router's cluster metrics.
    pub fn cluster_metrics(&self) -> &Arc<ClusterMetrics> {
        &self.metrics
    }

    /// The configured backend addresses.
    pub fn backends(&self) -> &[SocketAddr] {
        self.config.backends.as_slice()
    }

    /// Replica-group size for `model`.
    pub fn replication_of(&self, model: &str) -> usize {
        let requested = self
            .config
            .replication_overrides
            .iter()
            .find(|(name, _)| name == model)
            .map_or(self.config.default_replication, |&(_, rf)| rf);
        requested.clamp(1, self.pools.len().max(1))
    }

    /// Backend indices holding `model`, primary first (ring order).
    pub fn replicas_for(&self, model: &str) -> Vec<usize> {
        self.ring.replicas(model, self.replication_of(model))
    }

    /// Fan one batch of rows out to `model`'s replica group with
    /// failover. Returns the answering backend's model version, the
    /// probability rows, and the indices of rows the backend abstained
    /// on (empty unless [`SubmitOptions::abstain_below`] is set;
    /// abstained rows are zero-filled in the block).
    pub fn predict_rows(
        &self,
        model: &str,
        rows: RowBlock,
        options: &SubmitOptions,
    ) -> Result<(Option<u64>, RowBlock, Vec<u32>), ServeError> {
        let replicas = self.replicas_for(model);
        if replicas.is_empty() {
            return Err(ServeError::Io("no backend nodes are configured".into()));
        }
        // Healthy members first, ring order preserved; unhealthy ones
        // still get a shot afterwards in case the prober is stale.
        let ordered: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&b| self.pools[b].healthy())
            .chain(
                replicas
                    .iter()
                    .copied()
                    .filter(|&b| !self.pools[b].healthy()),
            )
            .collect();

        let (priority, deadline_ms, abstain) = encode_options(options);
        // Deadlined requests use deadline + configured grace as the
        // socket timeout (see [`ClusterConfig::deadline_grace`]);
        // deadline-free requests use the configured request timeout.
        let timeout = match options.deadline {
            Some(d) => d.saturating_add(self.config.deadline_grace),
            None => self.config.request_timeout,
        };
        let request = Frame::Predict {
            model: model.to_string(),
            priority,
            deadline_ms,
            abstain,
            rows,
        };

        let mut failed_over = false;
        for (attempt, &b) in ordered.iter().enumerate() {
            self.metrics.record_fanout();
            if attempt > 0 {
                self.metrics.record_retry();
            }
            let started = Instant::now();
            match self.pools[b].call(&request, timeout) {
                Ok(Frame::PredictOk {
                    version,
                    rows,
                    abstained,
                }) => {
                    self.metrics.record_fanout_ok(started.elapsed());
                    if attempt > 0 && !failed_over {
                        self.metrics.record_failover();
                    }
                    return Ok((version, rows, abstained));
                }
                // The backend is draining: its replica peers still serve.
                Ok(Frame::Error {
                    code: ErrorCode::Disconnected,
                    ..
                }) => {
                    self.mark_down(b);
                    failed_over = self.note_failover(failed_over);
                }
                // Any other application error is authoritative: every
                // replica holds the same model bits, so retrying cannot
                // change the answer.
                Ok(Frame::Error { code, message }) => {
                    return Err(decode_serve_error(code, &message));
                }
                Ok(_) => {
                    // Protocol violation; treat the node as broken.
                    self.mark_down(b);
                    failed_over = self.note_failover(failed_over);
                }
                Err(err) if err.is_timeout() && options.deadline.is_some() => {
                    // The client's budget is spent; a retry cannot help.
                    return Err(ServeError::DeadlineExceeded);
                }
                Err(_) => {
                    self.mark_down(b);
                    failed_over = self.note_failover(failed_over);
                }
            }
        }
        Err(ServeError::Io(format!(
            "all {} replica(s) of {model:?} failed",
            ordered.len()
        )))
    }

    fn note_failover(&self, already: bool) -> bool {
        if !already {
            self.metrics.record_failover();
        }
        true
    }

    fn mark_down(&self, backend: usize) {
        self.pools[backend].set_healthy(false);
        self.pools[backend].drain();
        self.metrics.set_backend_up(backend, false);
    }

    /// Broadcast a hot-swap to every backend holding a replica of
    /// `model`, reporting each node's outcome. `backend_kind` is the wire
    /// byte (`0` naive, `1` parallel).
    pub fn publish(
        &self,
        model: &str,
        path: &str,
        version: u64,
        backend_kind: u8,
    ) -> Vec<PublishOutcome> {
        self.metrics.record_publish();
        let request = Frame::Publish {
            model: model.to_string(),
            path: path.to_string(),
            version,
            backend: backend_kind,
        };
        self.replicas_for(model)
            .into_iter()
            .map(|b| {
                let result = match self.pools[b].call(&request, self.config.request_timeout) {
                    Ok(Frame::PublishOk { version, displaced }) => Ok((version, displaced)),
                    Ok(Frame::Error { code, message }) => Err((code, message)),
                    Ok(other) => Err((
                        ErrorCode::BadRequest,
                        format!("unexpected reply frame {other:?}"),
                    )),
                    // Transport failure ≠ load failure: Disconnected says
                    // "the node is unreachable", while a node that could
                    // not load the artifact answers ErrorCode::Io itself.
                    Err(err) => {
                        self.mark_down(b);
                        Err((ErrorCode::Disconnected, err.to_string()))
                    }
                };
                PublishOutcome {
                    backend: b,
                    addr: self.pools[b].addr(),
                    result,
                }
            })
            .collect()
    }

    /// Broadcast labeled rows to every backend holding a replica of
    /// `model`, reporting each node's outcome. Every replica must fold
    /// the same rows to stay bit-identical, so — unlike predict — learn
    /// never fails over: a node that cannot be reached is reported as
    /// [`ErrorCode::Disconnected`] and its learner falls behind until its
    /// next published generation resynchronizes it.
    pub fn learn(&self, model: &str, rows: RowBlock, labels: Vec<u32>) -> Vec<LearnOutcome> {
        let request = Frame::Learn {
            model: model.to_string(),
            rows,
            labels,
        };
        self.replicas_for(model)
            .into_iter()
            .map(|b| {
                let result = match self.pools[b].call(&request, self.config.request_timeout) {
                    Ok(Frame::LearnOk {
                        accepted,
                        queue_depth,
                    }) => Ok((accepted, queue_depth)),
                    Ok(Frame::Error { code, message }) => Err((code, message)),
                    Ok(other) => Err((
                        ErrorCode::BadRequest,
                        format!("unexpected reply frame {other:?}"),
                    )),
                    Err(err) => {
                        self.mark_down(b);
                        Err((ErrorCode::Disconnected, err.to_string()))
                    }
                };
                LearnOutcome {
                    backend: b,
                    addr: self.pools[b].addr(),
                    result,
                }
            })
            .collect()
    }

    /// Union of every healthy backend's model listing (highest version
    /// wins when nodes disagree mid-swap), sorted by name.
    pub fn models(&self) -> Vec<ModelInfo> {
        let mut merged: HashMap<String, ModelInfo> = HashMap::new();
        for pool in self.pools.iter().filter(|p| p.healthy()) {
            if let Ok(Frame::ModelsOk { models }) =
                pool.call(&Frame::ModelsReq, self.config.request_timeout)
            {
                for info in models {
                    match merged.get(&info.name) {
                        Some(existing) if existing.version >= info.version => {}
                        _ => {
                            merged.insert(info.name.clone(), info);
                        }
                    }
                }
            }
        }
        let mut list: Vec<ModelInfo> = merged.into_values().collect();
        list.sort_by(|a, b| a.name.cmp(&b.name));
        list
    }

    /// One valid Prometheus scrape for the whole cluster: the router's
    /// `bcpnn_cluster_*` counters followed by every healthy backend's
    /// exposition, node-labeled and declaration-deduplicated by
    /// [`merge_expositions`].
    pub fn merged_prometheus(&self) -> String {
        let mut sections = Vec::new();
        for (i, pool) in self.pools.iter().enumerate() {
            if !pool.healthy() {
                continue;
            }
            if let Ok(Frame::MetricsOk { text }) =
                pool.call(&Frame::MetricsReq, self.config.request_timeout)
            {
                sections.push((i.to_string(), text));
            }
        }
        let mut out = self.metrics.to_prometheus();
        out.push_str(&merge_expositions(&sections));
        out
    }
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
    }
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("backends", &self.config.backends)
            .field("default_replication", &self.config.default_replication)
            .finish()
    }
}

fn probe(
    pool: &BackendPool,
    index: usize,
    nonce: u64,
    timeout: Duration,
    metrics: &ClusterMetrics,
) {
    let was = pool.healthy();
    let up = pool.ping(nonce, timeout);
    pool.set_healthy(up);
    metrics.set_backend_up(index, up);
    if was && !up {
        // Pooled connections to a node that just failed a probe are
        // corpses; recovery should start from fresh dials.
        pool.drain();
    }
}

/// The router *is* a [`ServeTarget`]: the serve crate's load generator —
/// and anything else written against the trait — can drive a whole
/// cluster without knowing it is one. The interior round trip completes
/// eagerly inside `submit_with_options`; the returned handle is
/// pre-resolved ([`PredictionHandle::ready`]).
impl ServeTarget for ClusterRouter {
    fn submit_with_options(
        &self,
        model: &str,
        features: Vec<f32>,
        options: SubmitOptions,
    ) -> ServeResult<PredictionHandle> {
        let rows = RowBlock {
            n_cols: features.len() as u32,
            data: features,
        };
        let result =
            self.predict_rows(model, rows, &options)
                .and_then(|(_version, rows, abstained)| {
                    // A single-row submission that came back abstained maps to
                    // the typed error, matching in-process submit semantics.
                    if abstained.contains(&0) {
                        Err(ServeError::Abstained)
                    } else {
                        Ok(rows.data)
                    }
                });
        Ok(PredictionHandle::ready(result))
    }

    fn registry(&self) -> &Arc<ModelRegistry> {
        &self.placeholder
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.local.snapshot()
    }

    fn to_prometheus(&self) -> String {
        self.merged_prometheus()
    }

    fn n_classes_of(&self, model: &str) -> Option<usize> {
        self.models()
            .into_iter()
            .find(|m| m.name == model)
            .map(|m| m.n_classes as usize)
    }
}

/// Merge per-node Prometheus expositions into one valid scrape: the
/// first `# HELP`/`# TYPE` declaration of each metric is kept, duplicates
/// from later nodes are dropped, and every sample line gains a
/// `node="<label>"` label so same-named series from different backends
/// stay distinct.
pub fn merge_expositions(sections: &[(String, String)]) -> String {
    let mut out = String::new();
    let mut declared: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (label, text) in sections {
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line
                .strip_prefix("# HELP ")
                .map(|r| ("HELP", r))
                .or_else(|| line.strip_prefix("# TYPE ").map(|r| ("TYPE", r)))
            {
                let (kind, body) = rest;
                let name = body.split_whitespace().next().unwrap_or("");
                if declared.insert(format!("{kind} {name}")) {
                    out.push_str(line);
                    out.push('\n');
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            out.push_str(&label_sample(line, label));
            out.push('\n');
        }
    }
    out
}

/// Inject `node="label"` into one sample line.
fn label_sample(line: &str, label: &str) -> String {
    let space = line.find(' ').unwrap_or(line.len());
    match line.find('{') {
        Some(brace) if brace < space => {
            format!(
                "{}{{node=\"{label}\",{}",
                &line[..brace],
                &line[brace + 1..]
            )
        }
        _ => {
            let (name, rest) = line.split_at(space);
            format!("{name}{{node=\"{label}\"}}{rest}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_expositions_dedupe_declarations_and_label_nodes() {
        let section = "\
# HELP bcpnn_serve_requests_total Requests accepted.
# TYPE bcpnn_serve_requests_total counter
bcpnn_serve_requests_total{shard=\"all\"} 5
bcpnn_serve_queue_depth 0
";
        let merged = merge_expositions(&[
            ("0".to_string(), section.to_string()),
            ("1".to_string(), section.replace(" 5", " 9")),
        ]);
        // One declaration pair, four node-labeled samples... except
        // queue_depth has no HELP/TYPE here, so: 2 declaration lines.
        assert_eq!(
            merged.matches("# HELP bcpnn_serve_requests_total").count(),
            1
        );
        assert_eq!(
            merged.matches("# TYPE bcpnn_serve_requests_total").count(),
            1
        );
        assert!(merged.contains("bcpnn_serve_requests_total{node=\"0\",shard=\"all\"} 5"));
        assert!(merged.contains("bcpnn_serve_requests_total{node=\"1\",shard=\"all\"} 9"));
        assert!(merged.contains("bcpnn_serve_queue_depth{node=\"0\"} 0"));
        assert!(merged.contains("bcpnn_serve_queue_depth{node=\"1\"} 0"));
    }

    #[test]
    fn merged_real_expositions_stay_valid() {
        let m = ServingMetrics::default();
        let text = m.snapshot().to_prometheus();
        let merged_backends =
            merge_expositions(&[("0".to_string(), text.clone()), ("1".to_string(), text)]);
        let cluster = ClusterMetrics::new(2);
        cluster.set_backend_up(0, true);
        let mut full = cluster.to_prometheus();
        full.push_str(&merged_backends);
        bcpnn_serve::validate_prometheus(&full)
            .expect("merged two-node scrape passes the validator");
    }

    #[test]
    fn replication_overrides_and_caps_apply() {
        let router = ClusterRouter::start(ClusterConfig {
            backends: vec![
                "127.0.0.1:1".parse().unwrap(),
                "127.0.0.1:2".parse().unwrap(),
                "127.0.0.1:3".parse().unwrap(),
            ],
            default_replication: 2,
            replication_overrides: vec![("wide".into(), 9), ("solo".into(), 1)],
            probe_timeout: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(50),
            health_interval: Duration::from_secs(3600),
            ..ClusterConfig::default()
        });
        assert_eq!(router.replication_of("anything"), 2);
        assert_eq!(router.replication_of("solo"), 1);
        // Requested 9, capped at the 3 backends that exist.
        assert_eq!(router.replication_of("wide"), 3);
        assert_eq!(router.replicas_for("wide").len(), 3);
        // Nothing is listening on those ports: everything probes down.
        assert_eq!(router.cluster_metrics().backends_up(), 0);
    }

    #[test]
    fn predict_with_no_backends_is_a_typed_io_error() {
        let router = ClusterRouter::start(ClusterConfig {
            health_interval: Duration::from_secs(3600),
            ..ClusterConfig::default()
        });
        let err = router
            .predict_rows(
                "higgs",
                RowBlock {
                    n_cols: 2,
                    data: vec![0.0, 1.0],
                },
                &SubmitOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "{err:?}");
    }
}
