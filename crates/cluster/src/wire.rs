//! The interior wire protocol: compact, versioned, length-prefixed binary
//! frames between the router tier and backend nodes.
//!
//! The exterior protocol (client ↔ router) is the gateway's HTTP/1.1 +
//! JSON; the interior hop deliberately is not. Feature rows and
//! probability rows travel as raw little-endian `f32` words — no decimal
//! rendering, no JSON parsing, no `f64` detour — so a predict fan-out
//! costs `4 bytes × cells` plus a fixed header, and bit-exactness across
//! the hop is a property of the encoding rather than of a careful float
//! printer.
//!
//! ## Framing
//!
//! ```text
//! +--------+---------+--------+--------------+-----------------+
//! | magic  | version | opcode | payload_len  | payload         |
//! | 4 B    | 1 B     | 1 B    | 4 B (LE u32) | payload_len B   |
//! +--------+---------+--------+--------------+-----------------+
//! ```
//!
//! * `magic` is [`MAGIC`] (`b"bCLu"`); anything else is rejected
//!   immediately — a stray HTTP client poking the backend port gets a
//!   typed [`WireError::BadMagic`], not a hang.
//! * `version` is [`VERSION`]. A node never interprets frames from a
//!   protocol version it does not speak.
//! * `payload_len` is bounded by the reader's limit (default
//!   [`DEFAULT_MAX_PAYLOAD`]) so a hostile or corrupt length cannot make a
//!   node allocate unbounded memory.
//!
//! Inside payloads: integers are little-endian; strings are a `u32` length
//! followed by UTF-8 bytes; `f32` matrices are `n_rows`/`n_cols` (`u32`
//! each) followed by row-major `f32` words. Every decode error is a typed
//! [`WireError::Malformed`] naming what was wrong.

use std::io::{Read, Write};
use std::time::Duration;

use bcpnn_serve::{Priority, ServeError, SubmitOptions};

/// The 4 magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"bCLu";

/// Interior protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Default ceiling on a frame payload (64 MiB — comfortably above the
/// gateway's 4 MiB JSON body limit after JSON→binary shrinkage, while
/// still bounding a corrupt length word).
pub const DEFAULT_MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes timeouts).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's protocol version is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The opcode byte names no known frame type.
    UnknownOpcode(u8),
    /// The declared payload length exceeds the reader's limit.
    Oversized {
        /// Length the frame declared.
        declared: usize,
        /// The reader's configured ceiling.
        limit: usize,
    },
    /// The payload did not decode as the opcode's schema.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Oversized { declared, limit } => {
                write!(
                    f,
                    "frame payload of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            WireError::Malformed(msg) => write!(f, "malformed frame payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this error is a socket-level timeout (the basis for the
    /// router's deadline mapping: a timed-out interior call with a client
    /// deadline becomes [`ServeError::DeadlineExceeded`]).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            )
        )
    }
}

/// Application-level error codes carried by [`Frame::Error`], mirroring
/// [`ServeError`] so the router can reconstruct the typed error — and
/// therefore the exact HTTP status — a single-node gateway would have
/// produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// No model under the requested name ([`ServeError::UnknownModel`]).
    UnknownModel = 1,
    /// Feature width mismatch ([`ServeError::ShapeMismatch`]).
    ShapeMismatch = 2,
    /// The model rejected the batch ([`ServeError::Model`]).
    Model = 3,
    /// Artifact I/O failure ([`ServeError::Io`]).
    Io = 4,
    /// Deadline passed before execution ([`ServeError::DeadlineExceeded`]).
    DeadlineExceeded = 5,
    /// The backend is shutting down ([`ServeError::Disconnected`]).
    Disconnected = 6,
    /// The artifact path is outside the backend's allowlisted root.
    Forbidden = 7,
    /// The request frame was semantically invalid (e.g. zero-width rows).
    BadRequest = 8,
    /// The node's online-learn queue is full; retry later.
    Overloaded = 9,
    /// The model abstained: prediction confidence fell below the
    /// request's threshold ([`ServeError::Abstained`]). Only appears as a
    /// whole-frame error on single-row paths; multi-row frames report
    /// abstention in-band via [`Frame::PredictOk`]'s `abstained` list.
    Abstained = 10,
}

impl ErrorCode {
    /// Decode from the wire byte.
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::UnknownModel,
            2 => ErrorCode::ShapeMismatch,
            3 => ErrorCode::Model,
            4 => ErrorCode::Io,
            5 => ErrorCode::DeadlineExceeded,
            6 => ErrorCode::Disconnected,
            7 => ErrorCode::Forbidden,
            8 => ErrorCode::BadRequest,
            9 => ErrorCode::Overloaded,
            10 => ErrorCode::Abstained,
            _ => return None,
        })
    }
}

/// Encode a [`ServeError`] as `(code, message)` for an error frame.
pub fn encode_serve_error(err: &ServeError) -> (ErrorCode, String) {
    let code = match err {
        ServeError::UnknownModel(_) => ErrorCode::UnknownModel,
        ServeError::ShapeMismatch { .. } => ErrorCode::ShapeMismatch,
        ServeError::Io(_) => ErrorCode::Io,
        ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        ServeError::Abstained => ErrorCode::Abstained,
        ServeError::Disconnected => ErrorCode::Disconnected,
        _ => ErrorCode::Model,
    };
    (code, err.to_string())
}

/// Reconstruct the [`ServeError`] an error frame stands for, so the
/// router-side HTTP mapping (`bcpnn_gateway::status_of`) yields the same
/// status a single-node deployment would. `Forbidden` and `BadRequest`
/// have no `ServeError` twin and are handled by the caller first.
pub fn decode_serve_error(code: ErrorCode, message: &str) -> ServeError {
    match code {
        ErrorCode::UnknownModel => ServeError::UnknownModel(message.to_string()),
        // The exact widths are only in the message; a zero/zero mismatch
        // still maps to the right HTTP status (400).
        ErrorCode::ShapeMismatch => ServeError::ShapeMismatch {
            expected: 0,
            got: 0,
        },
        ErrorCode::Io => ServeError::Io(message.to_string()),
        ErrorCode::DeadlineExceeded => ServeError::DeadlineExceeded,
        ErrorCode::Abstained => ServeError::Abstained,
        ErrorCode::Disconnected => ServeError::Disconnected,
        _ => ServeError::Model(message.to_string()),
    }
}

/// A rectangular block of `f32` rows travelling on the wire (features on
/// the way in, class probabilities on the way out). Stored flat so one
/// `Vec` holds the whole block.
#[derive(Debug, Clone, PartialEq)]
pub struct RowBlock {
    /// Width of every row.
    pub n_cols: u32,
    /// Row-major cells; `len == n_rows * n_cols`.
    pub data: Vec<f32>,
}

impl RowBlock {
    /// Build a block from equal-width rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> RowBlock {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows cannot form a RowBlock");
            data.extend_from_slice(row);
        }
        RowBlock {
            n_cols: n_cols as u32,
            data,
        }
    }

    /// Number of rows in the block.
    pub fn n_rows(&self) -> usize {
        if self.n_cols == 0 {
            0
        } else {
            self.data.len() / self.n_cols as usize
        }
    }

    /// Borrowed view of row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        let w = self.n_cols as usize;
        &self.data[i * w..(i + 1) * w]
    }
}

/// One listed model in a [`Frame::ModelsOk`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// Current version.
    pub version: u64,
    /// Feature width the model expects.
    pub n_inputs: u32,
    /// Number of output classes.
    pub n_classes: u32,
}

/// One interior-protocol frame: requests flow router → backend, replies
/// backend → router, one reply per request on the same connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Health probe; the nonce is echoed back in [`Frame::Pong`].
    Ping {
        /// Correlates the pong with its ping.
        nonce: u64,
    },
    /// Health probe reply.
    Pong {
        /// The ping's nonce, echoed.
        nonce: u64,
    },
    /// Run a batch of feature rows through a named model.
    Predict {
        /// Registry name of the model.
        model: String,
        /// Scheduling priority (`0` normal, `1` high, `2` low).
        priority: u8,
        /// Deadline in milliseconds, `0` for none. Measured from arrival
        /// at the backend, matching single-node submission semantics.
        deadline_ms: u64,
        /// Confidence floor ([`SubmitOptions::abstain_below`]): rows
        /// whose top-2 margin falls below it come back abstained instead
        /// of answered. `None` disables abstention.
        abstain: Option<f32>,
        /// The feature rows.
        rows: RowBlock,
    },
    /// Successful predict reply.
    PredictOk {
        /// Version of the model that answered (`None` if it vanished
        /// between dispatch and the version read).
        version: Option<u64>,
        /// One probability row per request row. Abstained rows are
        /// zero-filled; their indices are listed in `abstained`.
        rows: RowBlock,
        /// Indices of rows the model abstained on (confidence below the
        /// request's `abstain` threshold), strictly ascending.
        abstained: Vec<u32>,
    },
    /// Any application-level failure.
    Error {
        /// Typed failure category.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
    /// Load a persisted artifact from the backend's disk and hot-swap it
    /// into the backend's registry.
    Publish {
        /// Registry name to publish under.
        model: String,
        /// Artifact directory path on the backend host.
        path: String,
        /// Version number to publish as.
        version: u64,
        /// Compute backend (`0` naive, `1` parallel).
        backend: u8,
    },
    /// Successful publish reply.
    PublishOk {
        /// The version now serving.
        version: u64,
        /// Version displaced by the swap, if any.
        displaced: Option<u64>,
    },
    /// Request the backend's Prometheus exposition.
    MetricsReq,
    /// Prometheus exposition text.
    MetricsOk {
        /// The backend's full exposition (serve + gateway-style counters).
        text: String,
    },
    /// Request the backend's model listing.
    ModelsReq,
    /// Model listing reply.
    ModelsOk {
        /// Registered models, sorted by name.
        models: Vec<ModelInfo>,
    },
    /// Feed labeled rows to the online learner attached to a model. The
    /// router fans this out to *every* replica of the model's group, so
    /// each replica's shadow trains on the same stream.
    Learn {
        /// Registry name of the model.
        model: String,
        /// The labeled feature rows.
        rows: RowBlock,
        /// One class label per row.
        labels: Vec<u32>,
    },
    /// Successful learn reply.
    LearnOk {
        /// Rows accepted into the backend learner's queue.
        accepted: u64,
        /// Rows waiting in that queue after acceptance.
        queue_depth: u64,
    },
}

impl Frame {
    fn opcode(&self) -> u8 {
        match self {
            Frame::Ping { .. } => 0x01,
            Frame::Pong { .. } => 0x02,
            Frame::Predict { .. } => 0x03,
            Frame::PredictOk { .. } => 0x04,
            Frame::Error { .. } => 0x05,
            Frame::Publish { .. } => 0x06,
            Frame::PublishOk { .. } => 0x07,
            Frame::MetricsReq => 0x08,
            Frame::MetricsOk { .. } => 0x09,
            Frame::ModelsReq => 0x0A,
            Frame::ModelsOk { .. } => 0x0B,
            Frame::Learn { .. } => 0x0C,
            Frame::LearnOk { .. } => 0x0D,
        }
    }

    /// Serialize the frame (header + payload) into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(10 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.opcode());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Ping { nonce } | Frame::Pong { nonce } => {
                put_u64(&mut p, *nonce);
            }
            Frame::Predict {
                model,
                priority,
                deadline_ms,
                abstain,
                rows,
            } => {
                put_str(&mut p, model);
                p.push(*priority);
                put_u64(&mut p, *deadline_ms);
                put_opt_f32(&mut p, *abstain);
                put_rows(&mut p, rows);
            }
            Frame::PredictOk {
                version,
                rows,
                abstained,
            } => {
                put_opt_u64(&mut p, *version);
                put_rows(&mut p, rows);
                put_u32(&mut p, abstained.len() as u32);
                for &i in abstained {
                    put_u32(&mut p, i);
                }
            }
            Frame::Error { code, message } => {
                p.push(*code as u8);
                put_str(&mut p, message);
            }
            Frame::Publish {
                model,
                path,
                version,
                backend,
            } => {
                put_str(&mut p, model);
                put_str(&mut p, path);
                put_u64(&mut p, *version);
                p.push(*backend);
            }
            Frame::PublishOk { version, displaced } => {
                put_u64(&mut p, *version);
                put_opt_u64(&mut p, *displaced);
            }
            Frame::MetricsReq | Frame::ModelsReq => {}
            Frame::MetricsOk { text } => put_str(&mut p, text),
            Frame::Learn {
                model,
                rows,
                labels,
            } => {
                put_str(&mut p, model);
                put_rows(&mut p, rows);
                put_u32(&mut p, labels.len() as u32);
                for &label in labels {
                    put_u32(&mut p, label);
                }
            }
            Frame::LearnOk {
                accepted,
                queue_depth,
            } => {
                put_u64(&mut p, *accepted);
                put_u64(&mut p, *queue_depth);
            }
            Frame::ModelsOk { models } => {
                put_u32(&mut p, models.len() as u32);
                for m in models {
                    put_str(&mut p, &m.name);
                    put_u64(&mut p, m.version);
                    put_u32(&mut p, m.n_inputs);
                    put_u32(&mut p, m.n_classes);
                }
            }
        }
        p
    }

    /// Write the frame to a stream and flush it.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.encode())?;
        w.flush()
    }

    /// Read one frame from a stream, enforcing `max_payload`.
    pub fn read_from<R: Read>(r: &mut R, max_payload: usize) -> Result<Frame, WireError> {
        let mut header = [0u8; 10];
        r.read_exact(&mut header)?;
        let magic: [u8; 4] = header[0..4].try_into().unwrap();
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if header[4] != VERSION {
            return Err(WireError::UnsupportedVersion(header[4]));
        }
        let opcode = header[5];
        let len = u32::from_le_bytes(header[6..10].try_into().unwrap()) as usize;
        if len > max_payload {
            return Err(WireError::Oversized {
                declared: len,
                limit: max_payload,
            });
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Frame::decode_payload(opcode, &payload)
    }

    /// Decode a payload against its opcode's schema. Trailing bytes are a
    /// decode error: a frame means exactly its schema, nothing more.
    pub fn decode_payload(opcode: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut c = Cursor {
            bytes: payload,
            pos: 0,
        };
        let frame = match opcode {
            0x01 => Frame::Ping { nonce: c.u64()? },
            0x02 => Frame::Pong { nonce: c.u64()? },
            0x03 => Frame::Predict {
                model: c.str()?,
                priority: c.u8()?,
                deadline_ms: c.u64()?,
                abstain: c.opt_f32()?,
                rows: c.rows()?,
            },
            0x04 => {
                let version = c.opt_u64()?;
                let rows = c.rows()?;
                let n = c.u32()? as usize;
                if n > c.remaining() / 4 {
                    return Err(WireError::Malformed(format!(
                        "abstained count {n} exceeds what the payload could hold"
                    )));
                }
                let mut abstained = Vec::with_capacity(n);
                for _ in 0..n {
                    abstained.push(c.u32()?);
                }
                Frame::PredictOk {
                    version,
                    rows,
                    abstained,
                }
            }
            0x05 => {
                let raw = c.u8()?;
                let code = ErrorCode::from_u8(raw)
                    .ok_or_else(|| WireError::Malformed(format!("unknown error code {raw}")))?;
                Frame::Error {
                    code,
                    message: c.str()?,
                }
            }
            0x06 => Frame::Publish {
                model: c.str()?,
                path: c.str()?,
                version: c.u64()?,
                backend: c.u8()?,
            },
            0x07 => Frame::PublishOk {
                version: c.u64()?,
                displaced: c.opt_u64()?,
            },
            0x08 => Frame::MetricsReq,
            0x09 => Frame::MetricsOk { text: c.str()? },
            0x0A => Frame::ModelsReq,
            0x0B => {
                let n = c.u32()? as usize;
                // Each entry is at least 20 bytes; pre-check so a corrupt
                // count cannot drive a huge reservation.
                if n > c.remaining() / 20 + 1 {
                    return Err(WireError::Malformed(format!(
                        "model count {n} exceeds what the payload could hold"
                    )));
                }
                let mut models = Vec::with_capacity(n);
                for _ in 0..n {
                    models.push(ModelInfo {
                        name: c.str()?,
                        version: c.u64()?,
                        n_inputs: c.u32()?,
                        n_classes: c.u32()?,
                    });
                }
                Frame::ModelsOk { models }
            }
            0x0C => {
                let model = c.str()?;
                let rows = c.rows()?;
                let n = c.u32()? as usize;
                if n != rows.n_rows() {
                    return Err(WireError::Malformed(format!(
                        "learn frame has {} rows but {n} labels",
                        rows.n_rows()
                    )));
                }
                let mut labels = Vec::with_capacity(n);
                for _ in 0..n {
                    labels.push(c.u32()?);
                }
                Frame::Learn {
                    model,
                    rows,
                    labels,
                }
            }
            0x0D => Frame::LearnOk {
                accepted: c.u64()?,
                queue_depth: c.u64()?,
            },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        if c.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after the payload",
                c.remaining()
            )));
        }
        Ok(frame)
    }
}

/// Convert a [`SubmitOptions`] to the wire's `(priority, deadline_ms,
/// abstain)` triple. Sub-millisecond deadlines round up to 1 ms so a
/// tiny-but-real deadline does not become "none" on the wire; the
/// abstention threshold travels as a raw `f32` word, bit-exactly.
pub fn encode_options(options: &SubmitOptions) -> (u8, u64, Option<f32>) {
    let priority = match options.priority {
        Priority::Normal => 0,
        Priority::High => 1,
        Priority::Low => 2,
    };
    let deadline_ms = options
        .deadline
        .map_or(0, |d| u64::max(d.as_millis() as u64, 1));
    (priority, deadline_ms, options.abstain_below)
}

/// Reconstruct [`SubmitOptions`] from the wire triple. Unknown priority
/// bytes degrade to `Normal` rather than failing the whole batch.
pub fn decode_options(priority: u8, deadline_ms: u64, abstain: Option<f32>) -> SubmitOptions {
    let mut options = SubmitOptions::new().priority(match priority {
        1 => Priority::High,
        2 => Priority::Low,
        _ => Priority::Normal,
    });
    if deadline_ms > 0 {
        options = options.deadline(Duration::from_millis(deadline_ms));
    }
    if let Some(threshold) = abstain {
        options = options.abstain_below(threshold);
    }
    options
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_opt_f32(out: &mut Vec<u8>, v: Option<f32>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_rows(out: &mut Vec<u8>, rows: &RowBlock) {
    put_u32(out, rows.n_cols);
    put_u32(out, rows.n_rows() as u32);
    for &v in &rows.data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(WireError::Malformed(format!(
                "option tag must be 0 or 1, got {other}"
            ))),
        }
    }

    fn opt_f32(&mut self) -> Result<Option<f32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let raw = self.take(4)?;
                Ok(Some(f32::from_le_bytes(raw.try_into().unwrap())))
            }
            other => Err(WireError::Malformed(format!(
                "option tag must be 0 or 1, got {other}"
            ))),
        }
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not valid UTF-8".into()))
    }

    fn rows(&mut self) -> Result<RowBlock, WireError> {
        let n_cols = self.u32()?;
        let n_rows = self.u32()? as usize;
        let cells = n_rows
            .checked_mul(n_cols as usize)
            .ok_or_else(|| WireError::Malformed("row block dimensions overflow".into()))?;
        if n_rows > 0 && n_cols == 0 {
            return Err(WireError::Malformed("rows with zero width".into()));
        }
        let raw = self.take(cells * 4)?;
        let mut data = Vec::with_capacity(cells);
        for chunk in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(RowBlock { n_cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = frame.encode();
        Frame::read_from(&mut &bytes[..], DEFAULT_MAX_PAYLOAD).expect("frame round-trips")
    }

    #[test]
    fn every_variant_round_trips() {
        let frames = [
            Frame::Ping { nonce: 7 },
            Frame::Pong { nonce: u64::MAX },
            Frame::Predict {
                model: "higgs".into(),
                priority: 1,
                deadline_ms: 250,
                abstain: Some(0.35),
                rows: RowBlock::from_rows(&[vec![1.0, -2.5], vec![0.0, f32::MIN_POSITIVE]]),
            },
            Frame::Predict {
                model: "higgs".into(),
                priority: 0,
                deadline_ms: 0,
                abstain: None,
                rows: RowBlock::from_rows(&[vec![1.0, 2.0]]),
            },
            Frame::PredictOk {
                version: Some(3),
                rows: RowBlock::from_rows(&[vec![0.25, 0.75]]),
                abstained: vec![],
            },
            Frame::PredictOk {
                version: Some(3),
                rows: RowBlock::from_rows(&[vec![0.0, 0.0], vec![0.25, 0.75]]),
                abstained: vec![0],
            },
            Frame::PredictOk {
                version: None,
                rows: RowBlock {
                    n_cols: 0,
                    data: vec![],
                },
                abstained: vec![],
            },
            Frame::Error {
                code: ErrorCode::DeadlineExceeded,
                message: "too slow".into(),
            },
            Frame::Publish {
                model: "higgs".into(),
                path: "/tmp/artifacts/higgs-v2".into(),
                version: 2,
                backend: 1,
            },
            Frame::PublishOk {
                version: 2,
                displaced: Some(1),
            },
            Frame::PublishOk {
                version: 1,
                displaced: None,
            },
            Frame::MetricsReq,
            Frame::MetricsOk {
                text: "# TYPE x counter\nx 1\n".into(),
            },
            Frame::ModelsReq,
            Frame::ModelsOk {
                models: vec![ModelInfo {
                    name: "higgs".into(),
                    version: 2,
                    n_inputs: 28,
                    n_classes: 2,
                }],
            },
            Frame::Learn {
                model: "higgs".into(),
                rows: RowBlock::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
                labels: vec![0, 1],
            },
            Frame::LearnOk {
                accepted: 2,
                queue_depth: 17,
            },
        ];
        for frame in &frames {
            assert_eq!(&roundtrip(frame), frame, "{frame:?}");
        }
    }

    #[test]
    fn floats_survive_bit_exactly_including_nan() {
        let rows = RowBlock {
            n_cols: 4,
            data: vec![f32::NAN, -0.0, f32::INFINITY, 1.000_000_1],
        };
        let frame = Frame::PredictOk {
            version: Some(1),
            rows,
            abstained: vec![],
        };
        let bytes = frame.encode();
        let back = Frame::read_from(&mut &bytes[..], DEFAULT_MAX_PAYLOAD).unwrap();
        let Frame::PredictOk { rows: got, .. } = back else {
            panic!("wrong frame type");
        };
        let Frame::PredictOk { rows: sent, .. } = frame else {
            unreachable!();
        };
        for (a, b) in sent.data.iter().zip(&got.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn learn_frame_with_mismatched_label_count_is_malformed() {
        let good = Frame::Learn {
            model: "m".into(),
            rows: RowBlock::from_rows(&[vec![1.0], vec![2.0]]),
            labels: vec![0, 1],
        };
        let bytes = good.encode();
        // Payload layout: ..., label_count u32, labels. Lower the count:
        // the labels themselves become trailing bytes — still malformed.
        let mut tampered = bytes.clone();
        let count_at = tampered.len() - 2 * 4 - 4;
        tampered[count_at..count_at + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut tampered.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn options_round_trip_through_the_wire_pair() {
        let options = SubmitOptions::new()
            .priority(Priority::High)
            .deadline(Duration::from_millis(250))
            .abstain_below(0.25);
        let (p, d, a) = encode_options(&options);
        assert_eq!((p, d, a), (1, 250, Some(0.25)));
        assert_eq!(decode_options(p, d, a), options);
        // No deadline stays none; sub-millisecond rounds up, not down.
        assert_eq!(encode_options(&SubmitOptions::new()), (0, 0, None));
        let tiny = SubmitOptions::new().deadline(Duration::from_micros(10));
        assert_eq!(encode_options(&tiny).1, 1);
    }

    #[test]
    fn serve_errors_map_there_and_back() {
        let cases = [
            ServeError::UnknownModel("m".into()),
            ServeError::DeadlineExceeded,
            ServeError::Abstained,
            ServeError::Disconnected,
            ServeError::Io("gone".into()),
            ServeError::Model("bad".into()),
        ];
        for err in cases {
            let (code, msg) = encode_serve_error(&err);
            let back = decode_serve_error(code, &msg);
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(&err),
                "{err:?}"
            );
        }
        // ShapeMismatch keeps its discriminant even though the widths
        // travel only in the message.
        let (code, msg) = encode_serve_error(&ServeError::ShapeMismatch {
            expected: 28,
            got: 3,
        });
        assert!(matches!(
            decode_serve_error(code, &msg),
            ServeError::ShapeMismatch { .. }
        ));
        assert!(msg.contains("28"));
    }
}
