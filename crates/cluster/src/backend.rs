//! The backend node: today's in-process serving stack behind the interior
//! binary protocol.
//!
//! A [`BackendNode`] wraps any [`ServeTarget`] (in practice a
//! [`ShardedServer`](bcpnn_serve::ShardedServer)) behind a
//! `std::net::TcpListener` speaking [`crate::wire::Frame`]
//! request/reply, one handler thread per connection. A multi-row
//! `Predict` frame is submitted row by row before any row is waited on,
//! so the node's micro-batcher coalesces rows *across router
//! connections* exactly as the single-node gateway does across HTTP
//! connections.
//!
//! Dropping the node is a **hard kill**, not a graceful drain: the
//! listener closes and every live connection is shut down mid-flight.
//! That is deliberate — it is what the failover integration test (and a
//! real crashed process) looks like from the router's side.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bcpnn_backend::BackendKind;
use bcpnn_gateway::artifact;
use bcpnn_learn::{LearnError, OnlineLearner};
use bcpnn_serve::{Pipeline, ServeTarget, ServedModel};

use crate::wire::{
    decode_options, encode_serve_error, ErrorCode, Frame, ModelInfo, RowBlock, WireError,
    DEFAULT_MAX_PAYLOAD,
};

/// Backend node configuration.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Ceiling on incoming frame payloads.
    pub max_payload: usize,
    /// Per-connection socket read/write timeout. A connection idle past
    /// this is closed; the router's pool redials transparently.
    pub io_timeout: Duration,
    /// Allowlisted root for `Publish` artifact paths; `None` allows any
    /// path (trusted interior networks only).
    pub artifact_root: Option<PathBuf>,
}

impl Default for BackendConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_payload: DEFAULT_MAX_PAYLOAD,
            io_timeout: Duration::from_secs(60),
            artifact_root: None,
        }
    }
}

struct NodeShared {
    target: Arc<dyn ServeTarget>,
    max_payload: usize,
    io_timeout: Duration,
    artifact_root: Option<PathBuf>,
    /// Online learners attached to this node, one per learnable model;
    /// `Learn` frames for models without one are refused.
    learners: Vec<Arc<OnlineLearner>>,
    shutdown: AtomicBool,
    /// Clones of every accepted connection, so a kill can sever streams
    /// that handler threads are blocked on.
    conns: Mutex<Vec<TcpStream>>,
}

impl NodeShared {
    fn learner(&self, model: &str) -> Option<&Arc<OnlineLearner>> {
        self.learners.iter().find(|l| l.model() == model)
    }
}

/// A running backend node. Dropping it hard-kills the listener and every
/// live connection.
pub struct BackendNode {
    local_addr: SocketAddr,
    shared: Arc<NodeShared>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl BackendNode {
    /// Bind `config.addr` and serve `target` over the interior protocol.
    pub fn start(
        target: Arc<dyn ServeTarget>,
        config: BackendConfig,
    ) -> std::io::Result<BackendNode> {
        Self::start_with_learners(target, config, Vec::new())
    }

    /// [`BackendNode::start`] plus online learners: `Learn` frames for a
    /// learner's model feed its ingest queue, and learner metrics join
    /// the node's `MetricsReq` exposition.
    pub fn start_with_learners(
        target: Arc<dyn ServeTarget>,
        config: BackendConfig,
        learners: Vec<Arc<OnlineLearner>>,
    ) -> std::io::Result<BackendNode> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NodeShared {
            target,
            max_payload: config.max_payload,
            io_timeout: config.io_timeout,
            artifact_root: config.artifact_root,
            learners,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name(format!("bcpnn-backend-accept-{local_addr}"))
                .spawn(move || run_accept(&listener, &shared, &handlers))
                .expect("failed to spawn backend accept thread")
        };
        Ok(BackendNode {
            local_addr,
            shared,
            accept: Some(accept),
            handlers,
        })
    }

    /// The address the node actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving stack behind this node.
    pub fn target(&self) -> &Arc<dyn ServeTarget> {
        &self.shared.target
    }
}

impl Drop for BackendNode {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Sever every live connection mid-whatever-it-was-doing: in-flight
        // requests fail on the router side, which is the point.
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for handler in self.handlers.lock().unwrap().drain(..) {
            let _ = handler.join();
        }
    }
}

impl std::fmt::Debug for BackendNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendNode")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn run_accept(
    listener: &TcpListener,
    shared: &Arc<NodeShared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().push(clone);
        }
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("bcpnn-backend-conn".into())
            .spawn(move || handle_connection(&shared, stream))
            .expect("failed to spawn backend connection thread");
        handlers.lock().unwrap().push(handle);
    }
}

/// Serve frames on one connection until it closes, errors, or goes idle
/// past the I/O timeout.
fn handle_connection(shared: &NodeShared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let request = match Frame::read_from(&mut stream, shared.max_payload) {
            Ok(frame) => frame,
            // Framing violations get one typed error frame back (best
            // effort) and the connection is closed: after a bad header
            // the stream position cannot be trusted.
            Err(WireError::Io(_)) => return,
            Err(err) => {
                let _ = Frame::Error {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                }
                .write_to(&mut stream);
                return;
            }
        };
        let reply = handle_frame(shared, request);
        if reply.write_to(&mut stream).is_err() {
            return;
        }
    }
}

/// One request frame → one reply frame.
fn handle_frame(shared: &NodeShared, request: Frame) -> Frame {
    match request {
        Frame::Ping { nonce } => Frame::Pong { nonce },
        Frame::Predict {
            model,
            priority,
            deadline_ms,
            abstain,
            rows,
        } => handle_predict(shared, &model, priority, deadline_ms, abstain, &rows),
        Frame::Publish {
            model,
            path,
            version,
            backend,
        } => handle_publish(shared, &model, &path, version, backend),
        Frame::Learn {
            model,
            rows,
            labels,
        } => handle_learn(shared, &model, &rows, &labels),
        Frame::MetricsReq => Frame::MetricsOk {
            text: handle_metrics(shared),
        },
        Frame::ModelsReq => handle_models(shared),
        // Reply opcodes arriving as requests are protocol misuse.
        other => Frame::Error {
            code: ErrorCode::BadRequest,
            message: format!("frame {other:?} is not a request"),
        },
    }
}

fn handle_predict(
    shared: &NodeShared,
    model: &str,
    priority: u8,
    deadline_ms: u64,
    abstain: Option<f32>,
    rows: &RowBlock,
) -> Frame {
    let options = decode_options(priority, deadline_ms, abstain);
    // Advisory, same semantics as the single-node gateway: the current
    // version at accept time (each micro-batch resolves its own).
    let version = shared.target.registry().lookup(model).map(|m| m.version());

    // Submit every row before waiting on any, so the rows of one frame —
    // and of concurrent router connections — co-batch in the collector.
    let mut handles = Vec::with_capacity(rows.n_rows());
    for i in 0..rows.n_rows() {
        match shared
            .target
            .submit_with_options(model, rows.row(i).to_vec(), options)
        {
            Ok(handle) => handles.push(handle),
            Err(err) => {
                let (code, message) = encode_serve_error(&err);
                return Frame::Error { code, message };
            }
        }
    }
    let mut width = 0u32;
    let mut results: Vec<Option<Vec<f32>>> = Vec::with_capacity(rows.n_rows());
    let mut abstained: Vec<u32> = Vec::new();
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(proba) => {
                if width == 0 {
                    width = proba.len() as u32;
                } else if proba.len() as u32 != width {
                    // A hot-swap to a model with a different class count
                    // landed mid-frame; the reply cannot be rectangular.
                    return Frame::Error {
                        code: ErrorCode::Model,
                        message: "class count changed mid-request; retry".into(),
                    };
                }
                results.push(Some(proba));
            }
            // Abstention is per-row and in-band: the row zero-fills and
            // its index rides in the reply's abstained list, so one
            // low-confidence row does not fail its siblings.
            Err(bcpnn_serve::ServeError::Abstained) => {
                abstained.push(i as u32);
                results.push(None);
            }
            Err(err) => {
                let (code, message) = encode_serve_error(&err);
                return Frame::Error { code, message };
            }
        }
    }
    if width == 0 && !results.is_empty() {
        // Every row abstained: recover the class count from the registry
        // so the zero-filled reply still has its rectangular width.
        width = shared.target.n_classes_of(model).unwrap_or(0) as u32;
    }
    let mut data = Vec::with_capacity(results.len() * width as usize);
    for result in results {
        match result {
            Some(proba) => data.extend_from_slice(&proba),
            None => data.extend(std::iter::repeat_n(0.0f32, width as usize)),
        }
    }
    Frame::PredictOk {
        version,
        rows: RowBlock {
            n_cols: width,
            data,
        },
        abstained,
    }
}

fn handle_publish(
    shared: &NodeShared,
    model: &str,
    path: &str,
    version: u64,
    backend: u8,
) -> Frame {
    let kind = match backend {
        0 => BackendKind::Naive,
        1 => BackendKind::Parallel,
        other => {
            return Frame::Error {
                code: ErrorCode::BadRequest,
                message: format!("unknown compute backend byte {other}"),
            }
        }
    };
    if let Some(root) = &shared.artifact_root {
        if !artifact::path_allowed(root, std::path::Path::new(path)) {
            return Frame::Error {
                code: ErrorCode::Forbidden,
                message: format!("artifact path {path:?} is outside the allowed root"),
            };
        }
    }
    let pipeline = match Pipeline::load(path, kind) {
        Ok(pipeline) => pipeline,
        Err(err) => {
            return Frame::Error {
                code: ErrorCode::Io,
                message: format!("cannot load artifact at {path:?}: {err}"),
            }
        }
    };
    let (handle, displaced) = shared
        .target
        .registry()
        .publish(ServedModel::new(model, version, pipeline));
    Frame::PublishOk {
        version: handle.version(),
        displaced: displaced.map(|m| m.version()),
    }
}

fn handle_learn(shared: &NodeShared, model: &str, rows: &RowBlock, labels: &[u32]) -> Frame {
    let Some(learner) = shared.learner(model) else {
        return Frame::Error {
            code: ErrorCode::UnknownModel,
            message: format!("no online learner is attached for model {model:?}"),
        };
    };
    let row_vecs: Vec<Vec<f32>> = (0..rows.n_rows()).map(|i| rows.row(i).to_vec()).collect();
    let label_vec: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
    match learner.submit(&row_vecs, &label_vec) {
        Ok(accepted) => Frame::LearnOk {
            accepted: accepted as u64,
            queue_depth: learner.metrics().queue_depth,
        },
        Err(err) => {
            let code = match err {
                LearnError::QueueFull { .. } => ErrorCode::Overloaded,
                LearnError::ShuttingDown => ErrorCode::Disconnected,
                _ => ErrorCode::BadRequest,
            };
            Frame::Error {
                code,
                message: err.to_string(),
            }
        }
    }
}

/// The node's serving exposition plus every attached learner's
/// `bcpnn_learn_*` families, still one valid scrape.
fn handle_metrics(shared: &NodeShared) -> String {
    let mut text = shared.target.to_prometheus();
    if !shared.learners.is_empty() {
        let snapshots: Vec<(&str, bcpnn_learn::LearnSnapshot)> = shared
            .learners
            .iter()
            .map(|l| (l.model(), l.metrics()))
            .collect();
        text.push_str(&bcpnn_learn::prometheus_exposition(&snapshots));
    }
    text
}

fn handle_models(shared: &NodeShared) -> Frame {
    let registry = shared.target.registry();
    let mut names = registry.model_names();
    names.sort_unstable();
    let models = names
        .into_iter()
        .filter_map(|name| registry.lookup(&name))
        .map(|m| ModelInfo {
            name: m.name().to_string(),
            version: m.version(),
            n_inputs: m.predictor().n_inputs() as u32,
            n_classes: m.predictor().n_classes() as u32,
        })
        .collect();
    Frame::ModelsOk { models }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BackendPool;
    use bcpnn_core::model::Predictor;
    use bcpnn_core::{Network, ReadoutKind, TrainingParams};
    use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
    use bcpnn_serve::{ModelRegistry, ShardConfig, ShardedServer};

    fn tiny_pipeline(seed: u64) -> (Pipeline, bcpnn_data::Dataset) {
        let data = generate(&SyntheticHiggsConfig {
            n_samples: 200,
            seed,
            ..Default::default()
        });
        let (pipeline, _) = Pipeline::fit(
            &data,
            8,
            Network::builder()
                .hidden(2, 4, 0.3)
                .classes(2)
                .readout(ReadoutKind::Hybrid)
                .backend(bcpnn_backend::BackendKind::Naive)
                .seed(seed),
            TrainingParams {
                unsupervised_epochs: 1,
                supervised_epochs: 1,
                batch_size: 50,
                ..Default::default()
            },
        )
        .unwrap();
        (pipeline, data)
    }

    fn node_with_model(seed: u64) -> (BackendNode, Pipeline, bcpnn_data::Dataset) {
        let (pipeline, data) = tiny_pipeline(seed);
        let (reference, _) = tiny_pipeline(seed);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(ServedModel::new("higgs", 1, pipeline));
        let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(2)));
        let node = BackendNode::start(server as Arc<dyn ServeTarget>, BackendConfig::default())
            .expect("backend binds an ephemeral port");
        (node, reference, data)
    }

    fn pool_for(node: &BackendNode) -> BackendPool {
        BackendPool::new(
            node.local_addr(),
            Duration::from_secs(1),
            2,
            DEFAULT_MAX_PAYLOAD,
        )
    }

    #[test]
    fn ping_models_and_metrics_answer_over_the_wire() {
        let (node, _reference, _data) = node_with_model(11);
        let pool = pool_for(&node);
        assert!(pool.ping(42, Duration::from_secs(2)));
        let Ok(Frame::ModelsOk { models }) = pool.call(&Frame::ModelsReq, Duration::from_secs(2))
        else {
            panic!("models listing failed");
        };
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].name, "higgs");
        assert_eq!(models[0].n_inputs, 28);
        assert_eq!(models[0].n_classes, 2);
        let Ok(Frame::MetricsOk { text }) = pool.call(&Frame::MetricsReq, Duration::from_secs(2))
        else {
            panic!("metrics failed");
        };
        assert!(text.contains("bcpnn_serve_requests_total"));
    }

    #[test]
    fn predict_over_the_wire_is_bit_exact_against_the_pipeline() {
        let (node, reference, data) = node_with_model(12);
        let pool = pool_for(&node);
        let rows = RowBlock::from_rows(&[
            data.features.row(0).to_vec(),
            data.features.row(1).to_vec(),
            data.features.row(2).to_vec(),
        ]);
        let Ok(Frame::PredictOk {
            version, rows: got, ..
        }) = pool.call(
            &Frame::Predict {
                model: "higgs".into(),
                priority: 0,
                deadline_ms: 0,
                abstain: None,
                rows,
            },
            Duration::from_secs(5),
        )
        else {
            panic!("predict failed");
        };
        assert_eq!(version, Some(1));
        assert_eq!((got.n_rows(), got.n_cols), (3, 2));
        let direct = reference.predict_proba(&data.features).unwrap();
        for i in 0..3 {
            for c in 0..2 {
                assert_eq!(
                    got.row(i)[c].to_bits(),
                    direct.get(i, c).to_bits(),
                    "row {i} col {c} drifted across the wire"
                );
            }
        }
    }

    #[test]
    fn impossible_abstain_threshold_zero_fills_every_row() {
        let (node, _reference, data) = node_with_model(16);
        let pool = pool_for(&node);
        // Margins live in [0, 1], so a threshold above 1 abstains on
        // every row: the reply must still be rectangular (zero-filled)
        // with every index listed, not a whole-frame error.
        let reply = pool
            .call(
                &Frame::Predict {
                    model: "higgs".into(),
                    priority: 0,
                    deadline_ms: 0,
                    abstain: Some(1.5),
                    rows: RowBlock::from_rows(&[
                        data.features.row(0).to_vec(),
                        data.features.row(1).to_vec(),
                    ]),
                },
                Duration::from_secs(5),
            )
            .unwrap();
        let Frame::PredictOk {
            rows, abstained, ..
        } = reply
        else {
            panic!("expected PredictOk, got {reply:?}");
        };
        assert_eq!(abstained, vec![0, 1]);
        assert_eq!((rows.n_rows(), rows.n_cols), (2, 2));
        assert!(rows.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn application_errors_come_back_as_typed_error_frames() {
        let (node, _reference, data) = node_with_model(13);
        let pool = pool_for(&node);
        // Unknown model.
        let reply = pool
            .call(
                &Frame::Predict {
                    model: "ghost".into(),
                    priority: 0,
                    deadline_ms: 0,
                    abstain: None,
                    rows: RowBlock::from_rows(&[data.features.row(0).to_vec()]),
                },
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::UnknownModel,
                    ..
                }
            ),
            "{reply:?}"
        );
        // Wrong feature width.
        let reply = pool
            .call(
                &Frame::Predict {
                    model: "higgs".into(),
                    priority: 0,
                    deadline_ms: 0,
                    abstain: None,
                    rows: RowBlock::from_rows(&[vec![1.0, 2.0]]),
                },
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::ShapeMismatch,
                    ..
                }
            ),
            "{reply:?}"
        );
        // A reply opcode as a request.
        let reply = pool
            .call(&Frame::Pong { nonce: 1 }, Duration::from_secs(2))
            .unwrap();
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::BadRequest,
                    ..
                }
            ),
            "{reply:?}"
        );
    }

    #[test]
    fn publish_respects_the_artifact_allowlist() {
        let (pipeline, _) = tiny_pipeline(14);
        let root = std::env::temp_dir().join(format!("bcpnn-node-allow-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let artifact = root.join("higgs-v2");
        pipeline.save(&artifact).unwrap();

        let registry = Arc::new(ModelRegistry::new());
        let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(1)));
        let node = BackendNode::start(
            server as Arc<dyn ServeTarget>,
            BackendConfig {
                artifact_root: Some(root.clone()),
                ..BackendConfig::default()
            },
        )
        .unwrap();
        let pool = pool_for(&node);

        // Outside the root: Forbidden, nothing published.
        let reply = pool
            .call(
                &Frame::Publish {
                    model: "higgs".into(),
                    path: "/definitely/not/a/model".into(),
                    version: 2,
                    backend: 0,
                },
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(
            matches!(
                reply,
                Frame::Error {
                    code: ErrorCode::Forbidden,
                    ..
                }
            ),
            "{reply:?}"
        );
        // Inside the root: loads and publishes.
        let reply = pool
            .call(
                &Frame::Publish {
                    model: "higgs".into(),
                    path: artifact.to_str().unwrap().into(),
                    version: 2,
                    backend: 0,
                },
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(
            reply,
            Frame::PublishOk {
                version: 2,
                displaced: None
            }
        );
    }

    #[test]
    fn dropping_the_node_severs_live_connections() {
        let (node, _reference, _data) = node_with_model(15);
        let addr = node.local_addr();
        let pool = BackendPool::new(addr, Duration::from_secs(1), 2, DEFAULT_MAX_PAYLOAD);
        assert!(pool.ping(1, Duration::from_secs(2)));
        drop(node);
        // Both the pooled connection and fresh dials now fail.
        assert!(!pool.ping(2, Duration::from_millis(500)));
    }
}
