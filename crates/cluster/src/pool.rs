//! Per-backend connection pool: checkout/checkin of interior-protocol
//! TCP connections, with a health flag maintained by the router's prober.
//!
//! Connections are plain blocking `TcpStream`s speaking
//! [`crate::wire::Frame`] request/reply. The pool keeps a small free list
//! so steady-state fan-out reuses warm connections; a call that fails on
//! a *reused* connection with a non-timeout transport error retries once
//! on a fresh connection before the failure is reported — a pooled
//! connection may have died quietly (backend restart, idle reset) without
//! that saying anything about the backend's current health.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::wire::{Frame, WireError};

/// A pool of interior-protocol connections to one backend node.
#[derive(Debug)]
pub struct BackendPool {
    addr: SocketAddr,
    idle: Mutex<Vec<TcpStream>>,
    healthy: AtomicBool,
    max_idle: usize,
    connect_timeout: Duration,
    max_payload: usize,
}

impl BackendPool {
    /// A pool over the backend at `addr`. Backends start out marked
    /// healthy; the router's first probe corrects that within one health
    /// interval if the backend is not actually there.
    pub fn new(
        addr: SocketAddr,
        connect_timeout: Duration,
        max_idle: usize,
        max_payload: usize,
    ) -> BackendPool {
        BackendPool {
            addr,
            idle: Mutex::new(Vec::new()),
            healthy: AtomicBool::new(true),
            max_idle: max_idle.max(1),
            connect_timeout,
            max_payload,
        }
    }

    /// The backend's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the router currently considers this backend in rotation.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Mark the backend in or out of rotation.
    pub fn set_healthy(&self, healthy: bool) {
        self.healthy.store(healthy, Ordering::Relaxed);
    }

    /// Pop a pooled connection, or dial a fresh one. The boolean is true
    /// when the connection came from the pool (and may therefore be
    /// stale).
    fn checkout(&self, timeout: Duration) -> std::io::Result<(TcpStream, bool)> {
        if let Some(stream) = self.idle.lock().unwrap().pop() {
            configure(&stream, timeout)?;
            return Ok((stream, true));
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        configure(&stream, timeout)?;
        Ok((stream, false))
    }

    /// Return a connection that completed a round trip cleanly.
    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < self.max_idle {
            idle.push(stream);
        }
    }

    /// Drop every pooled connection (after a failed probe, so recovery
    /// starts from fresh dials rather than a free list of corpses).
    pub fn drain(&self) {
        self.idle.lock().unwrap().clear();
    }

    /// One request/reply round trip with `timeout` applied to both the
    /// write and the read. Retries once on a fresh connection if a reused
    /// one fails with a non-timeout transport error.
    pub fn call(&self, request: &Frame, timeout: Duration) -> Result<Frame, WireError> {
        let (stream, reused) = self.checkout(timeout).map_err(WireError::Io)?;
        match self.exchange(stream, request) {
            Ok(reply) => Ok(reply),
            Err(err) if reused && !err.is_timeout() => {
                // The pooled connection was stale; one fresh dial decides.
                let (stream, _) = self.checkout(timeout).map_err(WireError::Io)?;
                self.exchange(stream, request)
            }
            Err(err) => Err(err),
        }
    }

    fn exchange(&self, mut stream: TcpStream, request: &Frame) -> Result<Frame, WireError> {
        request.write_to(&mut stream)?;
        let reply = Frame::read_from(&mut stream, self.max_payload)?;
        self.checkin(stream);
        Ok(reply)
    }

    /// Binary health probe: a [`Frame::Ping`] whose nonce must be echoed
    /// back in the [`Frame::Pong`].
    pub fn ping(&self, nonce: u64, timeout: Duration) -> bool {
        matches!(
            self.call(&Frame::Ping { nonce }, timeout),
            Ok(Frame::Pong { nonce: echoed }) if echoed == nonce
        )
    }
}

fn configure(stream: &TcpStream, timeout: Duration) -> std::io::Result<()> {
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// A minimal frame-echo server: answers every Ping with a Pong and
    /// closes after `serve_frames` frames per connection.
    fn pong_server(serve_frames: usize) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                std::thread::spawn(move || {
                    for _ in 0..serve_frames {
                        let Ok(Frame::Ping { nonce }) = Frame::read_from(&mut stream, 1024) else {
                            return;
                        };
                        if (Frame::Pong { nonce }).write_to(&mut stream).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn ping_round_trips_and_reuses_the_connection() {
        let addr = pong_server(100);
        let pool = BackendPool::new(addr, Duration::from_secs(1), 4, 1024);
        assert!(pool.ping(7, Duration::from_secs(1)));
        assert!(pool.ping(8, Duration::from_secs(1)));
        // The second ping ran on the pooled connection: the free list
        // holds exactly one stream, not two.
        assert_eq!(pool.idle.lock().unwrap().len(), 1);
    }

    #[test]
    fn stale_pooled_connection_is_retried_on_a_fresh_dial() {
        // Server closes each connection after one frame: the pooled
        // connection from the first call is dead by the second.
        let addr = pong_server(1);
        let pool = BackendPool::new(addr, Duration::from_secs(1), 4, 1024);
        assert!(pool.ping(1, Duration::from_secs(1)));
        assert!(
            pool.ping(2, Duration::from_secs(1)),
            "second call must survive the stale pooled connection"
        );
    }

    #[test]
    fn connect_failure_is_an_io_error_not_a_hang() {
        // Bind-then-drop: the port is (almost certainly) closed.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let pool = BackendPool::new(addr, Duration::from_millis(200), 1, 1024);
        assert!(matches!(
            pool.call(&Frame::MetricsReq, Duration::from_millis(200)),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn read_timeout_reports_as_timeout() {
        // A listener that accepts but never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                std::thread::spawn(move || {
                    let mut sink = [0u8; 1024];
                    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
                });
            }
        });
        let pool = BackendPool::new(addr, Duration::from_secs(1), 1, 1024);
        let err = pool
            .call(&Frame::Ping { nonce: 1 }, Duration::from_millis(100))
            .unwrap_err();
        assert!(err.is_timeout(), "got {err:?}");
    }
}
