//! Property-based checks on the interior wire protocol: every frame the
//! encoder can produce must decode back to itself through the streaming
//! reader, and byte streams that violate the framing rules must be
//! rejected with the *right* [`WireError`] — a router that misreads a
//! torn frame as a short answer would silently corrupt predictions.

use bcpnn_cluster::wire::{Frame, ModelInfo, RowBlock, WireError, MAGIC, VERSION};
use proptest::prelude::*;

/// Wire-legal model/path strings: the charset the HTTP router admits.
fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..64, 1..24).prop_map(|idx| {
        const CHARSET: &[u8; 64] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
        idx.iter().map(|&i| CHARSET[i] as char).collect()
    })
}

/// Arbitrary (possibly empty) row blocks with consistent geometry.
fn rows_strategy() -> impl Strategy<Value = RowBlock> {
    (1u32..8, 0usize..6).prop_flat_map(|(n_cols, n_rows)| {
        prop::collection::vec(-1.0e6f32..1.0e6, n_cols as usize * n_rows)
            .prop_map(move |data| RowBlock { n_cols, data })
    })
}

/// One arbitrary frame of any variant. The shim has no `prop_oneof`, so a
/// discriminant field selects the variant from one shared field bundle.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0usize..13,
        name_strategy(),
        name_strategy(),
        rows_strategy(),
        (
            0u64..u64::MAX,
            0u8..3,
            1u8..11,
            prop::bool::ANY,
            0u64..u64::MAX,
        ),
    )
        .prop_map(|(variant, name, text, rows, (n, small, code, flag, n2))| {
            let opt = if flag { Some(n2) } else { None };
            match variant {
                0 => Frame::Ping { nonce: n },
                1 => Frame::Pong { nonce: n },
                2 => Frame::Predict {
                    model: name,
                    priority: small,
                    deadline_ms: n2,
                    // Exercise both the present and absent encodings, with
                    // a value derived from the shared field bundle.
                    abstain: if flag {
                        Some((n % 1000) as f32 / 1000.0)
                    } else {
                        None
                    },
                    rows,
                },
                3 => {
                    // Abstained indices are one-per-row at most; flag
                    // toggles between "none" and "every row".
                    let abstained = if flag {
                        (0..rows.n_rows() as u32).collect()
                    } else {
                        Vec::new()
                    };
                    Frame::PredictOk {
                        version: opt,
                        rows,
                        abstained,
                    }
                }
                4 => Frame::Error {
                    code: bcpnn_cluster::wire::ErrorCode::from_u8(code).unwrap(),
                    message: text,
                },
                5 => Frame::Publish {
                    model: name,
                    path: text,
                    version: n,
                    backend: small,
                },
                6 => Frame::PublishOk {
                    version: n,
                    displaced: opt,
                },
                7 => Frame::MetricsReq,
                8 => Frame::MetricsOk { text },
                9 => Frame::ModelsReq,
                11 => {
                    // Labels are one-per-row by the frame's schema.
                    let labels = (0..rows.n_rows()).map(|i| i as u32).collect();
                    Frame::Learn {
                        model: name,
                        rows,
                        labels,
                    }
                }
                12 => Frame::LearnOk {
                    accepted: n,
                    queue_depth: n2,
                },
                _ => Frame::ModelsOk {
                    models: vec![
                        ModelInfo {
                            name,
                            version: n,
                            n_inputs: 28,
                            n_classes: 2,
                        },
                        ModelInfo {
                            name: text,
                            version: n2,
                            n_inputs: u32::from(small),
                            n_classes: u32::from(code),
                        },
                    ],
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_frame_round_trips_through_the_stream_reader(frame in frame_strategy()) {
        let bytes = frame.encode();
        let decoded = Frame::read_from(&mut bytes.as_slice(), bytes.len()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn row_payloads_survive_bit_for_bit(rows in rows_strategy()) {
        let frame = Frame::PredictOk { version: Some(1), rows: rows.clone(), abstained: vec![] };
        let bytes = frame.encode();
        let Frame::PredictOk { rows: back, .. } =
            Frame::read_from(&mut bytes.as_slice(), bytes.len()).unwrap()
        else {
            panic!("wrong frame variant came back");
        };
        prop_assert_eq!(back.n_cols, rows.n_cols);
        prop_assert_eq!(back.data.len(), rows.data.len());
        for (a, b) in back.data.iter().zip(rows.data.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncating_a_frame_never_yields_a_frame(frame in frame_strategy(), frac in 0.0f32..1.0) {
        let bytes = frame.encode();
        // Any strict prefix must fail — as a clean I/O error (short read),
        // never as a successfully decoded different frame.
        let cut = ((bytes.len() as f32 * frac) as usize).min(bytes.len() - 1);
        let result = Frame::read_from(&mut bytes[..cut].as_ref(), bytes.len());
        prop_assert!(matches!(result, Err(WireError::Io(_))));
    }

    #[test]
    fn flipping_the_version_byte_is_rejected(frame in frame_strategy(), v in 0u8..255) {
        if v == VERSION {
            return;
        }
        let mut bytes = frame.encode();
        bytes[4] = v;
        let result = Frame::read_from(&mut bytes.as_slice(), bytes.len());
        prop_assert!(matches!(result, Err(WireError::UnsupportedVersion(got)) if got == v));
    }
}

/// The malformed-frame rejection table: each framing violation maps to
/// its own typed error, so operators can tell "wrong peer" (bad magic)
/// from "version skew" from "resource abuse" (oversized) at a glance.
#[test]
fn malformed_frames_are_rejected_with_typed_errors() {
    let good = (Frame::Ping { nonce: 7 }).encode();

    // Bad magic: something that is not this protocol at all.
    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"HTTP");
    assert!(matches!(
        Frame::read_from(&mut bad_magic.as_slice(), 1024),
        Err(WireError::BadMagic(m)) if &m == b"HTTP"
    ));

    // Version skew: same protocol, future revision.
    let mut bad_version = good.clone();
    bad_version[4] = VERSION + 1;
    assert!(matches!(
        Frame::read_from(&mut bad_version.as_slice(), 1024),
        Err(WireError::UnsupportedVersion(v)) if v == VERSION + 1
    ));

    // Unknown opcode: valid header, no such frame type.
    let mut bad_opcode = good.clone();
    bad_opcode[5] = 0x7F;
    assert!(matches!(
        Frame::read_from(&mut bad_opcode.as_slice(), 1024),
        Err(WireError::UnknownOpcode(0x7F))
    ));

    // Oversized: declared length above the reader's ceiling. The reader
    // must refuse *before* allocating the declared buffer.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&MAGIC);
    oversized.push(VERSION);
    oversized.push(0x01);
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Frame::read_from(&mut oversized.as_slice(), 1024),
        Err(WireError::Oversized { declared, limit: 1024 }) if declared == u32::MAX as usize
    ));

    // Short payload: header promises 8 nonce bytes, stream ends early.
    let mut short = good.clone();
    short.truncate(12);
    assert!(matches!(
        Frame::read_from(&mut short.as_slice(), 1024),
        Err(WireError::Io(_))
    ));

    // Trailing bytes: payload longer than the opcode's schema. A frame
    // means exactly its schema — extra bytes are a malformed frame, not
    // padding.
    let mut trailing = good.clone();
    trailing.push(0xFF);
    let len = (trailing.len() - 10) as u32;
    trailing[6..10].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        Frame::read_from(&mut trailing.as_slice(), 1024),
        Err(WireError::Malformed(_))
    ));

    // Ragged row block: data length not divisible by the column count.
    let mut ragged = Vec::new();
    ragged.extend_from_slice(&3u32.to_le_bytes()); // n_cols = 3
    ragged.extend_from_slice(&2u32.to_le_bytes()); // n_rows = 2
    ragged.extend_from_slice(&1.0f32.to_le_bytes()); // ...but only 1 value
    let mut framed = Vec::new();
    framed.extend_from_slice(&MAGIC);
    framed.push(VERSION);
    framed.push(0x04); // PredictOk
    let payload = {
        let mut p = vec![0u8]; // version: None
        p.extend_from_slice(&ragged);
        p
    };
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);
    assert!(matches!(
        Frame::read_from(&mut framed.as_slice(), 1024),
        Err(WireError::Malformed(_))
    ));
}
