//! Property-based tests for the data-parallel substrate: the parallel
//! helpers must always agree with their sequential counterparts.

use bcpnn_parallel::{chunk_ranges, even_ranges, par_map_collect, parallel_map_reduce, Range};
use proptest::prelude::*;

fn covers(ranges: &[Range], len: usize) -> bool {
    let mut next = 0usize;
    for r in ranges {
        if r.start != next || r.end <= r.start {
            return false;
        }
        next = r.end;
    }
    next == len
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn even_ranges_partition_the_domain(len in 0usize..5000, parts in 1usize..64) {
        let rs = even_ranges(len, parts);
        prop_assert!(covers(&rs, len));
        if len > 0 {
            let max = rs.iter().map(Range::len).max().unwrap();
            let min = rs.iter().map(Range::len).min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }

    #[test]
    fn chunk_ranges_partition_the_domain(len in 0usize..5000, chunk in 1usize..512) {
        let rs = chunk_ranges(len, chunk);
        prop_assert!(covers(&rs, len));
        prop_assert!(rs.iter().all(|r| r.len() <= chunk));
    }

    #[test]
    fn par_map_collect_matches_sequential_map(len in 0usize..3000, mult in 1u64..50) {
        let par: Vec<u64> = par_map_collect(len, |i| i as u64 * mult);
        let seq: Vec<u64> = (0..len).map(|i| i as u64 * mult).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn map_reduce_sum_matches_sequential(data in prop::collection::vec(0u32..1000, 0..4000), chunk in 1usize..300) {
        let expected: u64 = data.iter().map(|&v| v as u64).sum();
        let got = parallel_map_reduce(
            data.len(),
            chunk,
            0u64,
            |r| data[r.start..r.end].iter().map(|&v| v as u64).sum::<u64>(),
            |a, b| a + b,
        );
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn map_reduce_concat_preserves_order(len in 0usize..500, chunk in 1usize..64) {
        let expected: Vec<usize> = (0..len).collect();
        let got = parallel_map_reduce(
            len,
            chunk,
            Vec::new(),
            |r| (r.start..r.end).collect::<Vec<_>>(),
            |mut a, b| { a.extend(b); a },
        );
        prop_assert_eq!(expected, got);
    }
}
