//! Index-range partitioning helpers used to share loop iterations between
//! workers, mirroring OpenMP's static loop scheduling.

/// A half-open index range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Inclusive start index.
    pub start: usize,
    /// Exclusive end index.
    pub end: usize,
}

impl Range {
    /// Number of indices covered by the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range covers no indices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Split `[0, len)` into `parts` contiguous ranges whose sizes differ by at
/// most one (OpenMP "static" schedule). Empty trailing ranges are omitted.
pub fn even_ranges(len: usize, parts: usize) -> Vec<Range> {
    let parts = parts.max(1);
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < rem);
        if size == 0 {
            continue;
        }
        out.push(Range {
            start,
            end: start + size,
        });
        start += size;
    }
    out
}

/// Split `[0, len)` into contiguous ranges of at most `chunk` indices
/// (OpenMP "static, chunk" schedule).
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range> {
    let chunk = chunk.max(1);
    if len == 0 {
        return Vec::new();
    }
    let n = len.div_ceil(chunk);
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(Range { start, end });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(ranges: &[Range], len: usize) {
        let mut next = 0usize;
        for r in ranges {
            assert_eq!(r.start, next, "ranges must be contiguous");
            assert!(r.end > r.start, "ranges must be non-empty");
            next = r.end;
        }
        assert_eq!(next, len, "ranges must cover the whole span");
    }

    #[test]
    fn even_ranges_cover_everything() {
        for len in [0usize, 1, 2, 7, 16, 100, 1001] {
            for parts in [1usize, 2, 3, 8, 200] {
                let rs = even_ranges(len, parts);
                covers_exactly(&rs, len);
                if len > 0 {
                    assert!(rs.len() <= parts.min(len));
                    let max = rs.iter().map(Range::len).max().unwrap();
                    let min = rs.iter().map(Range::len).min().unwrap();
                    assert!(max - min <= 1, "even split must be balanced");
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_respect_chunk_size() {
        for len in [0usize, 1, 5, 64, 65, 1000] {
            for chunk in [1usize, 2, 16, 64, 4096] {
                let rs = chunk_ranges(len, chunk);
                covers_exactly(&rs, len);
                for r in &rs {
                    assert!(r.len() <= chunk);
                }
            }
        }
    }

    #[test]
    fn zero_parts_and_zero_chunk_are_clamped() {
        covers_exactly(&even_ranges(10, 0), 10);
        covers_exactly(&chunk_ranges(10, 0), 10);
    }

    #[test]
    fn range_len_and_empty() {
        let r = Range { start: 3, end: 7 };
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        let e = Range { start: 5, end: 5 };
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
    }
}
