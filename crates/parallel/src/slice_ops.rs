//! OpenMP-style loop and slice parallelism built on [`crate::ThreadPool::scope`].
//!
//! All helpers fall back to plain sequential execution when the problem is
//! small or when the global pool has a single thread, so they are safe to
//! call unconditionally from inner layers of the library.

use crate::partition::{chunk_ranges, even_ranges, Range};
use crate::pool::global_pool;

/// Problems smaller than this run sequentially: the work per element in the
/// BCPNN kernels is tiny, so parallelising very small loops only adds
/// scheduling overhead.
const SEQUENTIAL_CUTOFF: usize = 512;

/// Parallel `for i in 0..len { f(i) }` with automatic chunking.
///
/// `f` must be safe to call concurrently from several threads.
pub fn parallel_for<F>(start: usize, end: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let len = end.saturating_sub(start);
    if len == 0 {
        return;
    }
    let pool = global_pool();
    if len < SEQUENTIAL_CUTOFF || pool.num_threads() == 1 {
        for i in start..end {
            f(i);
        }
        return;
    }
    let ranges = even_ranges(len, pool.num_threads() * 4);
    let f = &f;
    pool.scope(|s| {
        for r in ranges {
            s.spawn(move || {
                for i in r.start..r.end {
                    f(start + i);
                }
            });
        }
    });
}

/// Parallel iteration over explicit index ranges: `f` receives each
/// half-open range `[range.start + offset, range.end + offset)` exactly once.
///
/// Unlike [`parallel_for`] the caller controls the chunk size, which is the
/// right interface when each chunk amortises some per-chunk setup (e.g. a
/// GEMM panel).
pub fn parallel_for_chunks<F>(len: usize, chunk: usize, f: F)
where
    F: Fn(Range) + Sync,
{
    if len == 0 {
        return;
    }
    let pool = global_pool();
    let ranges = chunk_ranges(len, chunk.max(1));
    if ranges.len() == 1 || pool.num_threads() == 1 {
        for r in ranges {
            f(r);
        }
        return;
    }
    let f = &f;
    pool.scope(|s| {
        for r in ranges {
            s.spawn(move || f(r));
        }
    });
}

/// Apply `f(start_index, chunk)` to disjoint mutable chunks of `data` in
/// parallel. `start_index` is the index of the first element of the chunk in
/// the original slice.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let pool = global_pool();
    if len <= chunk || pool.num_threads() == 1 {
        for (ci, c) in data.chunks_mut(chunk).enumerate() {
            f(ci * chunk, c);
        }
        return;
    }
    let f = &f;
    pool.scope(|s| {
        for (ci, c) in data.chunks_mut(chunk).enumerate() {
            s.spawn(move || f(ci * chunk, c));
        }
    });
}

/// Apply `f(start_index, a_chunk, b_chunk)` to aligned chunks of a mutable
/// slice `a` and a shared slice `b` in parallel.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn par_zip_chunks_mut<T, U, F>(a: &mut [T], b: &[U], chunk: usize, f: F)
where
    T: Send,
    U: Sync,
    F: Fn(usize, &mut [T], &[U]) + Sync,
{
    assert_eq!(
        a.len(),
        b.len(),
        "par_zip_chunks_mut requires equally sized slices"
    );
    let len = a.len();
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let pool = global_pool();
    if len <= chunk || pool.num_threads() == 1 {
        for (ci, ac) in a.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            f(start, ac, &b[start..start + ac.len()]);
        }
        return;
    }
    let f = &f;
    pool.scope(|s| {
        for (ci, ac) in a.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            let bc = &b[start..start + ac.len()];
            s.spawn(move || f(start, ac, bc));
        }
    });
}

/// Compute `f(i)` for every `i in 0..len` in parallel and collect the
/// results in index order.
pub fn par_map_collect<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    par_chunks_mut(
        &mut out,
        SEQUENTIAL_CUTOFF.min(len.max(1)),
        |start, chunk| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(start + offset));
            }
        },
    );
    out.into_iter()
        .map(|x| x.expect("par_map_collect slot not filled"))
        .collect()
}

/// Chunked parallel map-reduce over the index range `[0, len)`.
///
/// Each chunk `[r.start, r.end)` is mapped to a partial result with `map`,
/// and the partials are folded *sequentially in chunk order* with `reduce`,
/// starting from `identity`. Using a deterministic fold order keeps
/// floating-point reductions reproducible run-to-run for a fixed thread
/// count and chunk size.
pub fn parallel_map_reduce<A, M, R>(len: usize, chunk: usize, identity: A, map: M, reduce: R) -> A
where
    A: Send,
    M: Fn(Range) -> A + Sync,
    R: Fn(A, A) -> A,
{
    if len == 0 {
        return identity;
    }
    let ranges = chunk_ranges(len, chunk.max(1));
    let pool = global_pool();
    if ranges.len() == 1 || pool.num_threads() == 1 {
        let mut acc = identity;
        for r in ranges {
            acc = reduce(acc, map(r));
        }
        return acc;
    }
    let map = &map;
    let mut partials: Vec<Option<A>> = (0..ranges.len()).map(|_| None).collect();
    pool.scope(|s| {
        for (slot, r) in partials.iter_mut().zip(ranges.iter().copied()) {
            s.spawn(move || {
                *slot = Some(map(r));
            });
        }
    });
    let mut acc = identity;
    for p in partials {
        acc = reduce(acc, p.expect("parallel_map_reduce partial not filled"));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 10_000;
        let flags: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(0, n, |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_respects_start_offset() {
        let hits = AtomicU64::new(0);
        parallel_for(100, 200, |i| {
            assert!((100..200).contains(&i));
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        parallel_for(5, 5, |_| panic!("must not be called"));
        parallel_for(7, 3, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_chunks_covers_range() {
        let n = 5000;
        let flags: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_chunks(n, 97, |r| {
            for i in r.start..r.end {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_writes_every_element() {
        let mut data = vec![0usize; 4096];
        par_chunks_mut(&mut data, 100, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn par_zip_chunks_mut_adds_slices() {
        let mut a = vec![1.0f32; 3000];
        let b: Vec<f32> = (0..3000).map(|i| i as f32).collect();
        par_zip_chunks_mut(&mut a, &b, 128, |_, ac, bc| {
            for (x, y) in ac.iter_mut().zip(bc) {
                *x += *y;
            }
        });
        for (i, v) in a.iter().enumerate() {
            assert_eq!(*v, 1.0 + i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn par_zip_chunks_mut_rejects_mismatched_lengths() {
        let mut a = vec![0.0f32; 4];
        let b = vec![0.0f32; 5];
        par_zip_chunks_mut(&mut a, &b, 2, |_, _, _| {});
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let out = par_map_collect(2000, |i| i * 3);
        assert_eq!(out.len(), 2000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn par_map_collect_empty() {
        let out: Vec<u32> = par_map_collect(0, |_| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn map_reduce_sums_match_sequential() {
        for n in [0usize, 1, 10, 513, 10_000] {
            let expected: u64 = (0..n as u64).sum();
            let got = parallel_map_reduce(
                n,
                64,
                0u64,
                |r| (r.start as u64..r.end as u64).sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(got, expected, "n={n}");
        }
    }

    #[test]
    fn map_reduce_fold_order_is_deterministic() {
        // Build a reduction that is order-sensitive (string concatenation of
        // chunk starts) and check it is stable across runs.
        let run = || {
            parallel_map_reduce(
                1000,
                130,
                String::new(),
                |r| format!("[{}]", r.start),
                |a, b| a + &b,
            )
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(run(), first);
        }
    }
}
