//! A persistent worker-thread pool with a shared injector queue and
//! work-helping scope completion.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::config::PoolConfig;
use crate::scope::{Scope, ScopeState};

/// A unit of work executed by a pool worker.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads.
///
/// Jobs are injected into a shared MPMC channel; idle workers block on the
/// channel. The pool supports *scoped* execution ([`ThreadPool::scope`]),
/// which is what all the higher-level `parallel_for`-style helpers in this
/// crate are built on. While waiting for a scope to complete, the waiting
/// thread *helps* by draining jobs from the shared queue, so nested
/// parallelism (a task that itself spawns a scope) cannot deadlock the pool.
pub struct ThreadPool {
    sender: Sender<Job>,
    receiver: Receiver<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
    num_threads: usize,
    jobs_executed: Arc<AtomicUsize>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads)
            .field("jobs_executed", &self.jobs_executed.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadPool {
    /// Create a pool with the given configuration.
    pub fn new(config: PoolConfig) -> Self {
        let num_threads = config.resolve_threads();
        let (sender, receiver) = unbounded::<Job>();
        let jobs_executed = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(num_threads);
        for idx in 0..num_threads {
            let rx = receiver.clone();
            let counter = Arc::clone(&jobs_executed);
            let mut builder =
                std::thread::Builder::new().name(format!("{}-{idx}", config.thread_name));
            if let Some(stack) = config.stack_size {
                builder = builder.stack_size(stack);
            }
            let handle = builder
                .spawn(move || {
                    // Workers exit when the channel disconnects (pool drop).
                    while let Ok(job) = rx.recv() {
                        job();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("failed to spawn bcpnn worker thread");
            workers.push(handle);
        }
        Self {
            sender,
            receiver,
            workers,
            num_threads,
            jobs_executed,
        }
    }

    /// Number of worker threads owned by the pool.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Total number of jobs executed by the workers since the pool was
    /// created (diagnostic; does not include jobs run by helping threads).
    pub fn jobs_executed(&self) -> usize {
        self.jobs_executed.load(Ordering::Relaxed)
    }

    /// Submit a free-standing (`'static`) job for asynchronous execution.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.inject(Box::new(f));
    }

    pub(crate) fn inject(&self, job: Job) {
        self.sender
            .send(job)
            .expect("bcpnn thread pool queue disconnected");
    }

    /// Run `f` with a [`Scope`] that allows spawning tasks which borrow from
    /// the caller's stack. The call returns only after the scope body *and*
    /// every spawned task have completed. If the body or any task panicked,
    /// the panic is re-raised here.
    ///
    /// ```
    /// use bcpnn_parallel::{PoolConfig, ThreadPool};
    ///
    /// let pool = ThreadPool::new(PoolConfig::with_threads(2));
    /// let data = vec![1u32, 2, 3, 4];
    /// let mut partials = vec![0u32; 2];
    /// pool.scope(|s| {
    ///     let (lo, hi) = partials.split_at_mut(1);
    ///     let (a, b) = data.split_at(2);
    ///     s.spawn(move || lo[0] = a.iter().sum());
    ///     s.spawn(move || hi[0] = b.iter().sum());
    /// });
    /// assert_eq!(partials[0] + partials[1], 10);
    /// ```
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope, '_>) -> R,
    {
        let state = ScopeState::new();
        let scope = Scope::new(self, Arc::clone(&state));
        let body_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
        // Always wait for spawned tasks, even if the body panicked: tasks
        // may borrow data owned by our caller.
        self.complete_scope(&state);
        match body_result {
            Ok(r) => {
                if state.any_panicked() {
                    panic!("a task spawned in ThreadPool::scope panicked");
                }
                r
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Wait for every task of `state` to finish, helping to drain the shared
    /// queue in the meantime so nested scopes cannot deadlock.
    fn complete_scope(&self, state: &Arc<ScopeState>) {
        while !state.is_done() {
            match self.receiver.try_recv() {
                Ok(job) => job(),
                Err(_) => state.wait_briefly(),
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Replace the sender so the channel disconnects and workers exit.
        let (dummy_tx, _dummy_rx) = unbounded::<Job>();
        let old = std::mem::replace(&mut self.sender, dummy_tx);
        drop(old);
        drop(std::mem::replace(&mut self.receiver, _dummy_rx));
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool used by the `parallel_for`-style helpers.
///
/// Created lazily on first use with [`PoolConfig::default`], i.e. sized by
/// `BCPNN_NUM_THREADS` or the number of available cores.
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL_POOL.get_or_init(|| ThreadPool::new(PoolConfig::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_reports_thread_count() {
        let pool = ThreadPool::new(PoolConfig::with_threads(3));
        assert_eq!(pool.num_threads(), 3);
    }

    #[test]
    fn spawn_executes_static_jobs() {
        let pool = ThreadPool::new(PoolConfig::with_threads(2));
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Scoped no-op acts as a soft barrier only for scoped work, so poll.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) != 64 {
            assert!(std::time::Instant::now() < deadline, "jobs did not finish");
            std::thread::yield_now();
        }
        assert!(pool.jobs_executed() >= 64);
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let pool = ThreadPool::new(PoolConfig::with_threads(4));
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..257 {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::new(PoolConfig::with_threads(2));
        let v = pool.scope(|_| 42u32);
        assert_eq!(v, 42);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(PoolConfig::with_threads(2)));
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                let pool2 = &pool;
                outer.spawn(move || {
                    pool2.scope(|inner| {
                        for _ in 0..8 {
                            let total = &total;
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
    }

    #[test]
    #[should_panic(expected = "a task spawned in ThreadPool::scope panicked")]
    fn task_panic_propagates() {
        let pool = ThreadPool::new(PoolConfig::with_threads(2));
        pool.scope(|s| {
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn single_thread_pool_still_completes_scopes() {
        let pool = ThreadPool::new(PoolConfig::with_threads(1));
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn global_pool_is_reusable() {
        let p1 = global_pool();
        let p2 = global_pool();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.num_threads() >= 1);
    }
}
