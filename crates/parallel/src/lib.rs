//! # bcpnn-parallel
//!
//! Data-parallel execution substrate for StreamBrain-rs.
//!
//! StreamBrain's CPU backend is built on OpenMP worker threads that share
//! loop iterations; this crate plays the same role for the Rust
//! reproduction. It provides:
//!
//! * [`ThreadPool`] — a persistent pool of worker threads with a shared
//!   injector queue,
//! * [`ThreadPool::scope`] — structured (scoped) task spawning so tasks may
//!   borrow from the caller's stack,
//! * [`parallel_for`] / [`parallel_for_chunks`] — OpenMP-`parallel for`
//!   style index-range sharing,
//! * [`parallel_map_reduce`] — chunked map + sequential combine,
//! * slice helpers ([`par_chunks_mut`], [`par_zip_chunks_mut`]) used by the
//!   GEMM and trace-update kernels in `bcpnn-tensor` / `bcpnn-backend`.
//!
//! A global pool (lazily created, sized from `BCPNN_NUM_THREADS` or the
//! number of available cores) is available through [`global_pool`], which is
//! what the higher-level crates use by default.
//!
//! ## Example
//!
//! ```
//! use bcpnn_parallel::{global_pool, parallel_for, par_chunks_mut};
//!
//! let mut data = vec![0u64; 10_000];
//! // Square every index in parallel.
//! par_chunks_mut(&mut data, 1024, |start, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = ((start + i) as u64).pow(2);
//!     }
//! });
//! assert_eq!(data[100], 10_000);
//! assert!(global_pool().num_threads() >= 1);
//! parallel_for(0, data.len(), |_i| { /* side-effect free body */ });
//! ```

#![warn(missing_docs)]

mod config;
mod partition;
mod pool;
mod scope;
mod slice_ops;

pub use config::{PoolConfig, NUM_THREADS_ENV};
pub use partition::{chunk_ranges, even_ranges, Range};
pub use pool::{global_pool, ThreadPool};
pub use scope::Scope;
pub use slice_ops::{
    par_chunks_mut, par_map_collect, par_zip_chunks_mut, parallel_for, parallel_for_chunks,
    parallel_map_reduce,
};
