//! Pool configuration.

use std::num::NonZeroUsize;

/// Environment variable that overrides the number of worker threads used by
/// the global pool (mirrors `OMP_NUM_THREADS` for StreamBrain's CPU backend).
pub const NUM_THREADS_ENV: &str = "BCPNN_NUM_THREADS";

/// Configuration for a [`crate::ThreadPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads. `None` means "auto": use
    /// [`NUM_THREADS_ENV`] if set, otherwise the number of available cores.
    pub num_threads: Option<usize>,
    /// Prefix used for worker thread names (suffixed with the worker index).
    pub thread_name: String,
    /// Stack size per worker in bytes, `None` for the platform default.
    pub stack_size: Option<usize>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            num_threads: None,
            thread_name: "bcpnn-worker".to_string(),
            stack_size: None,
        }
    }
}

impl PoolConfig {
    /// Create a configuration with an explicit thread count.
    pub fn with_threads(num_threads: usize) -> Self {
        Self {
            num_threads: Some(num_threads.max(1)),
            ..Self::default()
        }
    }

    /// Resolve the effective number of worker threads.
    ///
    /// Resolution order: explicit `num_threads`, then the
    /// `BCPNN_NUM_THREADS` environment variable, then the number of
    /// available hardware threads, and finally 1 as a fallback.
    pub fn resolve_threads(&self) -> usize {
        if let Some(n) = self.num_threads {
            return n.max(1);
        }
        if let Ok(v) = std::env::var(NUM_THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resolves_to_at_least_one_thread() {
        let cfg = PoolConfig::default();
        assert!(cfg.resolve_threads() >= 1);
    }

    #[test]
    fn explicit_thread_count_wins() {
        let cfg = PoolConfig::with_threads(3);
        assert_eq!(cfg.resolve_threads(), 3);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let cfg = PoolConfig::with_threads(0);
        assert_eq!(cfg.resolve_threads(), 1);
    }

    #[test]
    fn default_config_fields() {
        let cfg = PoolConfig::default();
        assert_eq!(cfg.num_threads, None);
        assert_eq!(cfg.thread_name, "bcpnn-worker");
        assert_eq!(cfg.stack_size, None);
    }
}
