//! Structured (scoped) task spawning on a [`crate::ThreadPool`].
//!
//! A [`Scope`] lets tasks borrow data from the caller's stack frame: the
//! scope is guaranteed not to return until every spawned task has finished
//! (even if the scope body or a task panics), so the borrows remain valid
//! for the tasks' whole lifetime.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::pool::{Job, ThreadPool};

/// Shared completion state for one scope: an outstanding-task counter plus a
/// panic flag, with a condvar so the owning thread can sleep while waiting.
pub(crate) struct ScopeState {
    outstanding: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ScopeState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            outstanding: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    fn task_started(&self) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
    }

    fn task_finished(&self, panicked: bool) {
        if panicked {
            self.panicked.store(true, Ordering::SeqCst);
        }
        let prev = self.outstanding.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0);
        if prev == 1 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.outstanding.load(Ordering::SeqCst) == 0
    }

    pub(crate) fn any_panicked(&self) -> bool {
        self.panicked.load(Ordering::SeqCst)
    }

    /// Block for a short while (or until notified) waiting for completion.
    /// Returns immediately if the scope is already complete.
    pub(crate) fn wait_briefly(&self) {
        if self.is_done() {
            return;
        }
        let mut guard = self.lock.lock();
        if self.is_done() {
            return;
        }
        // A bounded wait keeps the owner responsive so it can also help
        // drain the pool's queue (see `ThreadPool::complete_scope`).
        self.cv
            .wait_for(&mut guard, std::time::Duration::from_millis(1));
    }
}

/// A scope in which tasks borrowing stack data can be spawned onto a pool.
///
/// Created by [`ThreadPool::scope`]; see that method for details and
/// examples.
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope, 'pool> Scope<'scope, 'pool> {
    pub(crate) fn new(pool: &'pool ThreadPool, state: Arc<ScopeState>) -> Self {
        Self {
            pool,
            state,
            _marker: std::marker::PhantomData,
        }
    }

    /// Spawn a task that may borrow data living at least as long as the
    /// scope. Panics inside the task are captured and re-raised by
    /// [`ThreadPool::scope`] once every task has completed.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.task_started();
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `ThreadPool::scope` does not return until
        // `state.outstanding` reaches zero, i.e. until this closure has run
        // to completion (or been dropped after a panic inside the runner).
        // All data borrowed by `f` therefore strictly outlives its
        // execution, which is the invariant the 'static bound would
        // otherwise enforce.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let job: Job = Box::new(move || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(task));
            state.task_finished(result.is_err());
        });
        self.pool.inject(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolConfig;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_state_counts_tasks() {
        let s = ScopeState::new();
        assert!(s.is_done());
        s.task_started();
        assert!(!s.is_done());
        s.task_finished(false);
        assert!(s.is_done());
        assert!(!s.any_panicked());
    }

    #[test]
    fn scope_state_records_panics() {
        let s = ScopeState::new();
        s.task_started();
        s.task_finished(true);
        assert!(s.any_panicked());
    }

    #[test]
    fn tasks_can_borrow_stack_data() {
        let pool = ThreadPool::new(PoolConfig::with_threads(4));
        let counter = AtomicU64::new(0);
        let values: Vec<u64> = (0..100).collect();
        pool.scope(|s| {
            for chunk in values.chunks(7) {
                let counter = &counter;
                s.spawn(move || {
                    let local: u64 = chunk.iter().sum();
                    counter.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }
}
