//! Property-based cross-checks: the parallel backend must agree with the
//! naive reference backend on arbitrary (well-formed) inputs, and the
//! kernels must preserve the probabilistic invariants the BCPNN model
//! relies on.

use bcpnn_backend::{Backend, NaiveBackend, ParallelBackend};
use bcpnn_tensor::Matrix;
use proptest::prelude::*;

/// A random BCPNN-shaped problem: batch, inputs, HCUs, MCUs plus the batch
/// and trace buffers, all with bounded sizes so a proptest case stays fast.
#[derive(Debug, Clone)]
struct Problem {
    x: Matrix<f32>,
    act: Matrix<f32>,
    pi: Vec<f32>,
    pj: Vec<f32>,
    pij: Matrix<f32>,
    mask: Matrix<f32>,
    weights: Matrix<f32>,
    bias: Vec<f32>,
    n_mcu: usize,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (1usize..8, 1usize..16, 1usize..4, 1usize..6).prop_flat_map(|(batch, n_in, n_hcu, n_mcu)| {
        let n_units = n_hcu * n_mcu;
        let x = prop::collection::vec(prop::bool::ANY, batch * n_in).prop_map(move |bits| {
            Matrix::from_vec(
                batch,
                n_in,
                bits.into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect(),
            )
        });
        let act = prop::collection::vec(0.0f32..1.0, batch * n_units)
            .prop_map(move |d| Matrix::from_vec(batch, n_units, d));
        let pi = prop::collection::vec(0.0f32..1.0, n_in);
        let pj = prop::collection::vec(0.0f32..1.0, n_units);
        let pij = prop::collection::vec(0.0f32..1.0, n_in * n_units)
            .prop_map(move |d| Matrix::from_vec(n_in, n_units, d));
        let mask = prop::collection::vec(prop::bool::ANY, n_hcu * n_in).prop_map(move |bits| {
            Matrix::from_vec(
                n_hcu,
                n_in,
                bits.into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect(),
            )
        });
        let weights = prop::collection::vec(-2.0f32..2.0, n_in * n_units)
            .prop_map(move |d| Matrix::from_vec(n_in, n_units, d));
        let bias = prop::collection::vec(-2.0f32..0.0, n_units);
        (x, act, pi, pj, pij, mask, weights, bias).prop_map(
            move |(x, act, pi, pj, pij, mask, weights, bias)| Problem {
                x,
                act,
                pi,
                pj,
                pij,
                mask,
                weights,
                bias,
                n_mcu,
            },
        )
    })
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_agrees_across_backends(p in problem_strategy()) {
        let naive = NaiveBackend::new();
        let par = ParallelBackend::new();
        let mut out_n = Matrix::zeros(p.x.rows(), p.weights.cols());
        let mut out_p = out_n.clone();
        naive.linear_forward(&p.x, &p.weights, &p.bias, &mut out_n);
        par.linear_forward(&p.x, &p.weights, &p.bias, &mut out_p);
        prop_assert!(out_n.max_abs_diff(&out_p) < 1e-3);
    }

    #[test]
    fn grouped_softmax_rows_sum_to_hcu_count(p in problem_strategy()) {
        let par = ParallelBackend::new();
        let mut m = p.act.clone();
        // Use raw activations as supports; after the grouped softmax every
        // row must sum to the number of hypercolumns (1 per group).
        par.grouped_softmax(&mut m, p.n_mcu);
        let n_hcu = m.cols() / p.n_mcu;
        for r in 0..m.rows() {
            let s: f32 = m.row(r).iter().sum();
            prop_assert!((s - n_hcu as f32).abs() < 1e-3);
            prop_assert!(m.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn trace_updates_agree_and_stay_in_unit_interval(p in problem_strategy(), rate in 0.001f32..1.0) {
        let naive = NaiveBackend::new();
        let par = ParallelBackend::new();
        // Normalise act per HCU first so pj stays a probability.
        let mut act = p.act.clone();
        par.grouped_softmax(&mut act, p.n_mcu);

        let mut pi_n = p.pi.clone();
        let mut pj_n = p.pj.clone();
        let mut pij_n = p.pij.clone();
        let mut pi_p = p.pi.clone();
        let mut pj_p = p.pj.clone();
        let mut pij_p = p.pij.clone();
        naive.update_traces(&p.x, &act, rate, &mut pi_n, &mut pj_n, &mut pij_n);
        par.update_traces(&p.x, &act, rate, &mut pi_p, &mut pj_p, &mut pij_p);
        for (a, b) in pi_n.iter().zip(pi_p.iter()) {
            prop_assert!(close(*a, *b));
        }
        for (a, b) in pj_n.iter().zip(pj_p.iter()) {
            prop_assert!(close(*a, *b));
        }
        prop_assert!(pij_n.max_abs_diff(&pij_p) < 1e-3);
        // Traces remain valid probabilities.
        prop_assert!(pi_p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(pj_p.iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
        prop_assert!(pij_p.as_slice().iter().all(|&v| (0.0..=1.0 + 1e-5).contains(&v)));
    }

    #[test]
    fn recomputed_weights_agree_and_are_finite(p in problem_strategy()) {
        let naive = NaiveBackend::new();
        let par = ParallelBackend::new();
        let mut w_n = Matrix::zeros(p.pij.rows(), p.pij.cols());
        let mut w_p = w_n.clone();
        let mut b_n = vec![0.0f32; p.pj.len()];
        let mut b_p = b_n.clone();
        naive.recompute_weights(&p.pi, &p.pj, &p.pij, 1e-8, 1.0, &mut w_n, &mut b_n);
        par.recompute_weights(&p.pi, &p.pj, &p.pij, 1e-8, 1.0, &mut w_p, &mut b_p);
        prop_assert!(w_n.max_abs_diff(&w_p) < 1e-3);
        prop_assert!(w_p.all_finite());
        prop_assert!(b_p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mask_application_agrees_and_zeroes_silent_inputs(p in problem_strategy()) {
        let naive = NaiveBackend::new();
        let par = ParallelBackend::new();
        let mut out_n = Matrix::zeros(p.weights.rows(), p.weights.cols());
        let mut out_p = out_n.clone();
        naive.apply_mask(&p.weights, &p.mask, p.n_mcu, &mut out_n);
        par.apply_mask(&p.weights, &p.mask, p.n_mcu, &mut out_p);
        prop_assert!(out_n.max_abs_diff(&out_p) < 1e-6);
        for i in 0..p.weights.rows() {
            for j in 0..p.weights.cols() {
                let h = j / p.n_mcu;
                if p.mask.get(h, i) == 0.0 {
                    prop_assert_eq!(out_p.get(i, j), 0.0);
                } else {
                    prop_assert_eq!(out_p.get(i, j), p.weights.get(i, j));
                }
            }
        }
    }

    #[test]
    fn mutual_information_agrees_and_is_finite(p in problem_strategy()) {
        let naive = NaiveBackend::new();
        let par = ParallelBackend::new();
        let n_hcu = p.pj.len() / p.n_mcu;
        let mut out_n = Matrix::zeros(n_hcu, p.pi.len());
        let mut out_p = out_n.clone();
        naive.mutual_information(&p.pi, &p.pj, &p.pij, p.n_mcu, &mut out_n);
        par.mutual_information(&p.pi, &p.pj, &p.pij, p.n_mcu, &mut out_p);
        prop_assert!(out_n.max_abs_diff(&out_p) < 1e-3);
        prop_assert!(out_p.all_finite());
    }
}
