//! Explicitly vectorized single-threaded backend.
//!
//! Evertz's "Vectorized Cluster Search" observes that the BCPNN-style
//! "irregular" inner loop vectorizes fine once it is phrased as dense lane
//! work; this backend is that phrasing for the Rust reproduction, built on
//! the hand-written 8-lane kernels in [`bcpnn_tensor::simd`] (the offline
//! build cannot pull `std::simd`).
//!
//! Two structural changes over [`NaiveBackend`](crate::NaiveBackend) carry
//! the speedup:
//!
//! * **Forward accumulate** runs input-major: for each active input `i`,
//!   one weight row is streamed once and `axpy`-ed into every batch row
//!   whose `x[b, i]` is non-zero. The naive batch-major loop re-streams
//!   each weight row per batch row, so at serving batch sizes this cuts
//!   weight-matrix traffic by the batch size; output rows (the working set
//!   that must stay cached) are `batch x units`, far smaller than the
//!   weights.
//! * **Trace update** processes eight output columns per step with the
//!   batch loop innermost and skips zero inputs (binary one-hot encodings
//!   are ~90% zeros), instead of a scalar per-`(i, j)` batch scan.
//!
//! **Numerical contract:** for every output element the accumulation order
//! is *identical* to the naive backend — forward sums ascend over inputs,
//! trace sums ascend over the batch, and skipped zero terms contribute
//! exactly `+0.0` in loops whose partial sums are never `-0.0` — so every
//! kernel is bit-exact against [`NaiveBackend`](crate::NaiveBackend)
//! (`tests/backend_equivalence.rs` asserts equality, not tolerance).
//! Weight recomputation and mutual information are
//! transcendental-function-bound with no reduction to block, so they
//! delegate to the naive loops unchanged; softmax and the forward `axpy`
//! route through [`bcpnn_tensor::simd::dispatch`], so on an AVX2+FMA
//! machine (or under `BCPNN_SIMD=avx2`) they run the explicit intrinsic
//! kernels. The naive backend routes its softmax through the *same*
//! dispatch kernel, so the bit-exactness contract holds tier-for-tier.

use bcpnn_tensor::simd::dispatch::{self, SimdTier};
use bcpnn_tensor::simd::{F32x8, LANES};
use bcpnn_tensor::Matrix;

use crate::kernels::trace_update;
use crate::naive::NaiveBackend;
use crate::traits::{check_forward_shapes, check_trace_shapes, Backend};

/// Cache block (in columns) for the forward accumulate: 512 `f32`s = 2 KiB
/// per output-row block, so a block of the output row plus the matching
/// weight-row block stay resident in L1 across the input loop.
const FORWARD_BLOCK: usize = 512;

/// Single-threaded backend with hand-vectorized 8-lane kernels.
#[derive(Debug, Default, Clone, Copy)]
pub struct VectorizedBackend {
    /// `None` routes to the process-wide active tier (detection or
    /// `BCPNN_SIMD`); `Some` pins this instance to one tier — how the bench
    /// suite compares tiers side by side without mutating global state.
    tier: Option<SimdTier>,
}

impl VectorizedBackend {
    /// Create a new vectorized backend on the process-wide active tier.
    pub fn new() -> Self {
        Self { tier: None }
    }

    /// Create a backend pinned to one dispatch tier (unsupported requests
    /// degrade like [`dispatch::set_tier`] — `avx2` without the CPU feature
    /// becomes `lanes`).
    pub fn with_tier(tier: SimdTier) -> Self {
        Self { tier: Some(tier) }
    }

    /// The tier this instance dispatches to right now.
    pub fn tier(&self) -> SimdTier {
        self.tier.unwrap_or_else(dispatch::active_tier)
    }
}

impl Backend for VectorizedBackend {
    fn name(&self) -> &'static str {
        "vectorized"
    }

    fn linear_forward(
        &self,
        x: &Matrix<f32>,
        weights: &Matrix<f32>,
        bias: &[f32],
        out: &mut Matrix<f32>,
    ) {
        check_forward_shapes(x, weights, bias, out);
        let (batch, n_in) = x.shape();
        let n_units = weights.cols();
        for b in 0..batch {
            out.row_mut(b).copy_from_slice(bias);
        }
        if batch == 0 || n_units == 0 {
            return;
        }
        // Column blocks keep the active slice of every output row in cache
        // while the input loop streams the matching weight-row slices.
        let mut col = 0;
        while col < n_units {
            let width = FORWARD_BLOCK.min(n_units - col);
            // Input-major: stream each weight row once per block, reuse it
            // across every batch row that activates it. Per output element
            // the sum still ascends over `i` — the naive order — and axpy is
            // bit-identical on every dispatch tier.
            let tier = self.tier();
            for i in 0..n_in {
                let w_block = &weights.row(i)[col..col + width];
                for b in 0..batch {
                    let xv = x.get(b, i);
                    if xv == 0.0 {
                        continue;
                    }
                    let out_block = &mut out.row_mut(b)[col..col + width];
                    dispatch::axpy_with(tier, out_block, xv, w_block);
                }
            }
            col += width;
        }
    }

    fn grouped_softmax(&self, m: &mut Matrix<f32>, group: usize) {
        // Same shared kernel the naive backend routes through, so the two
        // backends stay bit-exact tier-for-tier; this instance's pinned tier
        // (if any) wins over the process-wide one.
        dispatch::softmax_groups_into_with(self.tier(), m, group);
    }

    fn update_traces(
        &self,
        x: &Matrix<f32>,
        act: &Matrix<f32>,
        rate: f32,
        pi: &mut [f32],
        pj: &mut [f32],
        pij: &mut Matrix<f32>,
    ) {
        check_trace_shapes(x, act, pi, pj, pij);
        let batch = x.rows();
        if batch == 0 {
            return;
        }
        let inv_b = 1.0 / batch as f32;
        let n_in = x.cols();
        let n_units = act.cols();

        // pi / pj: eight columns of batch sums per step, batch ascending per
        // column exactly like the scalar column scan.
        column_mean_traces(x, rate, inv_b, pi);
        column_mean_traces(act, rate, inv_b, pj);

        // pij: for each input i, accumulate eight joint-trace columns at a
        // time over the batch. The batch loop stays innermost (naive order)
        // and rows with x[b, i] == 0 are skipped: their products are exactly
        // +0.0 against partial sums that start at +0.0 and only ever add
        // finite products, so the skip cannot change a single bit.
        for i in 0..n_in {
            let row = pij.row_mut(i);
            let mut col = 0;
            while col + LANES <= n_units {
                let mut acc = F32x8::zero();
                for b in 0..batch {
                    let xv = x.get(b, i);
                    if xv == 0.0 {
                        continue;
                    }
                    let a = F32x8::load(&act.row(b)[col..col + LANES]);
                    acc = acc.mul_add(F32x8::splat(xv), a);
                }
                let sums = acc.to_array();
                for (p, s) in row[col..col + LANES].iter_mut().zip(sums) {
                    *p = trace_update(*p, s * inv_b, rate);
                }
                col += LANES;
            }
            for (j, p) in row.iter_mut().enumerate().skip(col) {
                let mut s = 0.0f32;
                for b in 0..batch {
                    let xv = x.get(b, i);
                    if xv == 0.0 {
                        continue;
                    }
                    s += xv * act.get(b, j);
                }
                *p = trace_update(*p, s * inv_b, rate);
            }
        }
    }

    fn recompute_weights(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        eps: f32,
        bias_gain: f32,
        weights: &mut Matrix<f32>,
        bias: &mut [f32],
    ) {
        // ln()-bound elementwise map: the naive loop is already optimal.
        NaiveBackend::new().recompute_weights(pi, pj, pij, eps, bias_gain, weights, bias);
    }

    fn apply_mask(
        &self,
        weights: &Matrix<f32>,
        mask: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        NaiveBackend::new().apply_mask(weights, mask, n_mcu, out);
    }

    fn mutual_information(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        NaiveBackend::new().mutual_information(pi, pj, pij, n_mcu, out);
    }
}

/// `trace[c] ← trace_update(trace[c], col_sum_c(m) · inv_b, rate)` with the
/// batch sum of each column accumulated rows-ascending (the naive order),
/// eight columns per step.
fn column_mean_traces(m: &Matrix<f32>, rate: f32, inv_b: f32, traces: &mut [f32]) {
    let cols = m.cols();
    let mut col = 0;
    while col + LANES <= cols {
        let mut acc = F32x8::zero();
        for b in 0..m.rows() {
            acc += F32x8::load(&m.row(b)[col..col + LANES]);
        }
        let sums = acc.to_array();
        for (p, s) in traces[col..col + LANES].iter_mut().zip(sums) {
            *p = trace_update(*p, s * inv_b, rate);
        }
        col += LANES;
    }
    for (c, p) in traces.iter_mut().enumerate().skip(col) {
        let mut s = 0.0f32;
        for b in 0..m.rows() {
            s += m.get(b, c);
        }
        *p = trace_update(*p, s * inv_b, rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_tensor::MatrixRng;

    fn backends() -> (NaiveBackend, VectorizedBackend) {
        (NaiveBackend::new(), VectorizedBackend::new())
    }

    /// A random forward/trace problem with a sparse binary input (the
    /// encoder regime) at a deliberately ragged shape.
    fn random_problem(
        rng: &mut MatrixRng,
        batch: usize,
        n_in: usize,
        n_units: usize,
    ) -> (Matrix<f32>, Matrix<f32>, Vec<f32>, Matrix<f32>) {
        let x = rng
            .uniform(batch, n_in, 0.0, 1.0)
            .map(|v| f32::from(v < 0.15));
        let w: Matrix<f32> = rng.normal(n_in, n_units, 0.0, 0.5);
        let bias: Vec<f32> = rng.uniform(1, n_units, -1.0, 0.0).into_vec();
        let act: Matrix<f32> = rng.uniform(batch, n_units, 0.0, 1.0);
        (x, w, bias, act)
    }

    #[test]
    fn forward_is_bit_exact_vs_naive_across_ragged_shapes() {
        let (naive, vec) = backends();
        let mut rng = MatrixRng::seed_from(3);
        for (batch, n_in, n_units) in [
            (1, 1, 1),
            (3, 7, 5),
            (4, 16, 8),
            (17, 29, 23),
            (8, 280, 60),
            (33, 100, 513),
        ] {
            let (x, w, bias, _) = random_problem(&mut rng, batch, n_in, n_units);
            let mut out_naive = Matrix::zeros(batch, n_units);
            let mut out_vec = Matrix::filled(batch, n_units, f32::NAN);
            naive.linear_forward(&x, &w, &bias, &mut out_naive);
            vec.linear_forward(&x, &w, &bias, &mut out_vec);
            assert_eq!(out_naive, out_vec, "shape {batch}x{n_in}x{n_units}");
        }
    }

    #[test]
    fn traces_are_bit_exact_vs_naive_across_ragged_shapes() {
        let (naive, vec) = backends();
        let mut rng = MatrixRng::seed_from(5);
        for (batch, n_in, n_units) in [(1, 1, 1), (5, 9, 7), (16, 30, 24), (21, 50, 41)] {
            let (x, _, _, act) = random_problem(&mut rng, batch, n_in, n_units);
            let pi0: Vec<f32> = rng.uniform(1, n_in, 0.01, 0.99).into_vec();
            let pj0: Vec<f32> = rng.uniform(1, n_units, 0.01, 0.99).into_vec();
            let pij0: Matrix<f32> = rng.uniform(n_in, n_units, 0.001, 0.5);
            let (mut pi_a, mut pj_a, mut pij_a) = (pi0.clone(), pj0.clone(), pij0.clone());
            let (mut pi_b, mut pj_b, mut pij_b) = (pi0, pj0, pij0);
            naive.update_traces(&x, &act, 0.25, &mut pi_a, &mut pj_a, &mut pij_a);
            vec.update_traces(&x, &act, 0.25, &mut pi_b, &mut pj_b, &mut pij_b);
            assert_eq!(pi_a, pi_b, "pi {batch}x{n_in}x{n_units}");
            assert_eq!(pj_a, pj_b, "pj {batch}x{n_in}x{n_units}");
            assert_eq!(pij_a, pij_b, "pij {batch}x{n_in}x{n_units}");
        }
    }

    #[test]
    fn delegated_kernels_match_naive() {
        let (naive, vec) = backends();
        let mut rng = MatrixRng::seed_from(9);
        let (n_in, n_mcu, n_hcu) = (12, 4, 3);
        let n_units = n_mcu * n_hcu;
        let pi: Vec<f32> = rng.uniform(1, n_in, 0.01, 0.99).into_vec();
        let pj: Vec<f32> = rng.uniform(1, n_units, 0.01, 0.99).into_vec();
        let pij: Matrix<f32> = rng.uniform(n_in, n_units, 0.001, 0.5);

        let mut w_a = Matrix::zeros(n_in, n_units);
        let mut w_b = Matrix::zeros(n_in, n_units);
        let mut bias_a = vec![0.0f32; n_units];
        let mut bias_b = vec![0.0f32; n_units];
        naive.recompute_weights(&pi, &pj, &pij, 1e-8, 1.0, &mut w_a, &mut bias_a);
        vec.recompute_weights(&pi, &pj, &pij, 1e-8, 1.0, &mut w_b, &mut bias_b);
        assert_eq!(w_a, w_b);
        assert_eq!(bias_a, bias_b);

        let mask = rng
            .uniform(n_hcu, n_in, 0.0, 1.0)
            .map(|v| f32::from(v < 0.5));
        let mut m_a = Matrix::zeros(n_in, n_units);
        let mut m_b = Matrix::zeros(n_in, n_units);
        naive.apply_mask(&w_a, &mask, n_mcu, &mut m_a);
        vec.apply_mask(&w_a, &mask, n_mcu, &mut m_b);
        assert_eq!(m_a, m_b);

        let mut mi_a = Matrix::zeros(n_hcu, n_in);
        let mut mi_b = Matrix::zeros(n_hcu, n_in);
        naive.mutual_information(&pi, &pj, &pij, n_mcu, &mut mi_a);
        vec.mutual_information(&pi, &pj, &pij, n_mcu, &mut mi_b);
        assert_eq!(mi_a, mi_b);

        let support: Matrix<f32> = rng.normal(6, n_units, 0.0, 2.0);
        let mut s_a = support.clone();
        let mut s_b = support;
        naive.grouped_softmax(&mut s_a, n_mcu);
        vec.grouped_softmax(&mut s_b, n_mcu);
        assert_eq!(s_a, s_b);
    }

    #[test]
    fn empty_batch_is_a_no_op_for_traces() {
        let vec = VectorizedBackend::new();
        let x = Matrix::zeros(0, 2);
        let act = Matrix::zeros(0, 3);
        let mut pi = vec![0.3f32; 2];
        let mut pj = vec![0.2f32; 3];
        let mut pij = Matrix::filled(2, 3, 0.1f32);
        vec.update_traces(&x, &act, 0.5, &mut pi, &mut pj, &mut pij);
        assert_eq!(pi, vec![0.3, 0.3]);
        assert_eq!(pj, vec![0.2, 0.2, 0.2]);
    }
}
