//! Backend selection, mirroring StreamBrain's `backend=` argument.

use std::sync::Arc;

use crate::naive::NaiveBackend;
use crate::parallel::ParallelBackend;
use crate::traits::Backend;
use crate::vectorized::VectorizedBackend;

/// Environment variable used by [`BackendKind::from_env`] to pick a backend
/// (values: `naive`, `parallel`, `vectorized`).
pub const BACKEND_ENV: &str = "BCPNN_BACKEND";

/// The available compute backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Single-threaded reference kernels.
    Naive,
    /// Multi-threaded GEMM-based kernels (the default).
    #[default]
    Parallel,
    /// Single-threaded hand-vectorized 8-lane kernels, bit-exact against
    /// [`BackendKind::Naive`] — the per-core fast path.
    Vectorized,
}

impl BackendKind {
    /// Parse a backend name (`"naive"` / `"parallel"` / `"vectorized"`,
    /// case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "naive" | "reference" | "numpy" => Some(Self::Naive),
            "parallel" | "openmp" | "cpu" | "threaded" => Some(Self::Parallel),
            "vectorized" | "simd" | "avx" | "lanes" => Some(Self::Vectorized),
            _ => None,
        }
    }

    /// Pick the backend from the `BCPNN_BACKEND` environment variable,
    /// falling back to [`BackendKind::Parallel`].
    pub fn from_env() -> Self {
        std::env::var(BACKEND_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Instantiate the backend.
    pub fn create(self) -> Arc<dyn Backend> {
        match self {
            Self::Naive => Arc::new(NaiveBackend::new()),
            Self::Parallel => Arc::new(ParallelBackend::new()),
            Self::Vectorized => Arc::new(VectorizedBackend::new()),
        }
    }

    /// Name of the backend kind.
    pub fn name(self) -> &'static str {
        match self {
            Self::Naive => "naive",
            Self::Parallel => "parallel",
            Self::Vectorized => "vectorized",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Convenience constructor for the default backend.
pub fn default_backend() -> Arc<dyn Backend> {
    BackendKind::default().create()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(BackendKind::parse("naive"), Some(BackendKind::Naive));
        assert_eq!(BackendKind::parse("NumPy"), Some(BackendKind::Naive));
        assert_eq!(
            BackendKind::parse(" parallel "),
            Some(BackendKind::Parallel)
        );
        assert_eq!(BackendKind::parse("openmp"), Some(BackendKind::Parallel));
        assert_eq!(BackendKind::parse("SIMD"), Some(BackendKind::Vectorized));
        assert_eq!(
            BackendKind::parse("vectorized"),
            Some(BackendKind::Vectorized)
        );
        assert_eq!(BackendKind::parse("cuda"), None);
    }

    #[test]
    fn create_returns_matching_backend() {
        assert_eq!(BackendKind::Naive.create().name(), "naive");
        assert_eq!(BackendKind::Parallel.create().name(), "parallel");
        assert_eq!(BackendKind::Vectorized.create().name(), "vectorized");
        assert_eq!(default_backend().name(), "parallel");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(BackendKind::Naive.to_string(), "naive");
        assert_eq!(BackendKind::Parallel.to_string(), "parallel");
        assert_eq!(BackendKind::Vectorized.to_string(), "vectorized");
    }
}
