//! The [`Backend`] trait: the set of batched kernels a compute backend must
//! provide to train and evaluate a BCPNN layer.
//!
//! StreamBrain ships NumPy, OpenMP/MPI, CUDA and FPGA backends behind one
//! Python interface; the Rust reproduction keeps the same shape with a
//! [`NaiveBackend`](crate::NaiveBackend) reference implementation and a
//! multi-threaded [`ParallelBackend`](crate::ParallelBackend). All kernels
//! operate on `f32` matrices in row-major layout with the unit axis laid out
//! as `hcu-major` (`column = hcu * n_mcu + mcu`).

use bcpnn_tensor::Matrix;

/// Batched compute kernels for BCPNN layers.
///
/// Shapes (with `B` = batch size, `N` = inputs, `H` = hypercolumns,
/// `M` = minicolumns per hypercolumn, `U = H·M` = total units):
///
/// | buffer | shape | meaning |
/// |---|---|---|
/// | `x` | `B x N` | input batch (binary one-hot blocks for Higgs) |
/// | `weights` | `N x U` | log-odds weights |
/// | `bias` | `U` | log-probability biases |
/// | `activations` | `B x U` | per-HCU softmax outputs |
/// | `pi` | `N` | input probability traces |
/// | `pj` | `U` | unit probability traces |
/// | `pij` | `N x U` | joint probability traces |
/// | `mask` | `H x N` | binary receptive-field mask |
pub trait Backend: Send + Sync {
    /// Human-readable backend name (used in logs and benchmark tables).
    fn name(&self) -> &'static str;

    /// Dense forward pass: `out = x · weights + bias` (bias broadcast over
    /// rows). `out` must be pre-allocated as `B x U`.
    fn linear_forward(
        &self,
        x: &Matrix<f32>,
        weights: &Matrix<f32>,
        bias: &[f32],
        out: &mut Matrix<f32>,
    );

    /// Apply an independent softmax to every contiguous group of `group`
    /// columns of every row of `m` (minicolumn competition inside each
    /// hypercolumn).
    fn grouped_softmax(&self, m: &mut Matrix<f32>, group: usize);

    /// Update the probability traces from one batch:
    ///
    /// * `pi  ← (1-rate)·pi  + rate · mean_b(x)`
    /// * `pj  ← (1-rate)·pj  + rate · mean_b(act)`
    /// * `pij ← (1-rate)·pij + rate · (xᵀ·act)/B`
    fn update_traces(
        &self,
        x: &Matrix<f32>,
        act: &Matrix<f32>,
        rate: f32,
        pi: &mut [f32],
        pj: &mut [f32],
        pij: &mut Matrix<f32>,
    );

    /// Recompute weights and biases from the traces:
    /// `w_ij = ln(p_ij/(p_i·p_j))`, `b_j = gain·ln(p_j)`, with `eps` floors.
    fn recompute_weights(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        eps: f32,
        bias_gain: f32,
        weights: &mut Matrix<f32>,
        bias: &mut [f32],
    );

    /// Produce the masked weight matrix actually used in the forward pass:
    /// `out[i, h·M + m] = weights[i, h·M + m] · mask[h, i]`.
    ///
    /// # Panics
    /// Implementations panic if the shapes are inconsistent with `n_mcu`.
    fn apply_mask(
        &self,
        weights: &Matrix<f32>,
        mask: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    );

    /// Mutual-information score of every (hypercolumn, input) pair:
    /// `out[h, i] = Σ_m MI_term(pi[i], pj[h·M+m], pij[i, h·M+m])`.
    ///
    /// Structural plasticity uses these scores to decide which silent
    /// connections to activate and which active connections to silence.
    fn mutual_information(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    );
}

/// Validate the shape relationships shared by all backends. Called by the
/// implementations at the top of each kernel so that misuse fails loudly and
/// identically regardless of backend.
pub(crate) fn check_forward_shapes(
    x: &Matrix<f32>,
    weights: &Matrix<f32>,
    bias: &[f32],
    out: &Matrix<f32>,
) {
    assert_eq!(
        x.cols(),
        weights.rows(),
        "forward: x has {} columns but weights has {} rows",
        x.cols(),
        weights.rows()
    );
    assert_eq!(
        weights.cols(),
        bias.len(),
        "forward: weights has {} columns but bias has length {}",
        weights.cols(),
        bias.len()
    );
    assert_eq!(
        (x.rows(), weights.cols()),
        out.shape(),
        "forward: out must be {}x{}, got {:?}",
        x.rows(),
        weights.cols(),
        out.shape()
    );
}

/// Validate trace-update shapes (see [`check_forward_shapes`]).
pub(crate) fn check_trace_shapes(
    x: &Matrix<f32>,
    act: &Matrix<f32>,
    pi: &[f32],
    pj: &[f32],
    pij: &Matrix<f32>,
) {
    assert_eq!(
        x.rows(),
        act.rows(),
        "traces: x and activations must share the batch dimension"
    );
    assert_eq!(
        x.cols(),
        pi.len(),
        "traces: pi must have one entry per input"
    );
    assert_eq!(
        act.cols(),
        pj.len(),
        "traces: pj must have one entry per unit"
    );
    assert_eq!(
        (x.cols(), act.cols()),
        pij.shape(),
        "traces: pij must be inputs x units"
    );
}

/// Validate mask application / MI shapes (see [`check_forward_shapes`]).
pub(crate) fn check_mask_shapes(
    weights: &Matrix<f32>,
    mask: &Matrix<f32>,
    n_mcu: usize,
    out: &Matrix<f32>,
) {
    assert!(n_mcu > 0, "n_mcu must be positive");
    assert_eq!(
        weights.cols() % n_mcu,
        0,
        "unit count {} is not a multiple of n_mcu {}",
        weights.cols(),
        n_mcu
    );
    let n_hcu = weights.cols() / n_mcu;
    assert_eq!(
        (n_hcu, weights.rows()),
        mask.shape(),
        "mask must be n_hcu x inputs ({} x {}), got {:?}",
        n_hcu,
        weights.rows(),
        mask.shape()
    );
    assert_eq!(
        weights.shape(),
        out.shape(),
        "masked-weight output must match the weight shape"
    );
}
