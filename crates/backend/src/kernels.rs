//! Scalar kernels shared by every backend implementation.
//!
//! These are the per-element formulas of the BCPNN learning rule
//! (Ravichandran et al. 2020, eq. 4–8; Podobas et al. 2021 §3): the
//! log-odds weight, the log-probability bias, and the per-connection
//! mutual-information score used by structural plasticity.

/// BCPNN weight for one connection: `w_ij = ln(p_ij / (p_i · p_j))`,
/// with all probabilities floored at `eps` so silent units stay finite.
#[inline(always)]
pub fn bcpnn_weight(pij: f32, pi: f32, pj: f32, eps: f32) -> f32 {
    let pi = pi.max(eps);
    let pj = pj.max(eps);
    let pij = pij.max(eps * eps);
    (pij / (pi * pj)).ln()
}

/// BCPNN bias for one unit: `b_j = gain · ln(p_j)` (floored at `eps`).
#[inline(always)]
pub fn bcpnn_bias(pj: f32, gain: f32, eps: f32) -> f32 {
    gain * pj.max(eps).ln()
}

/// Contribution of one (input `i`, minicolumn `j`) pair to the mutual
/// information between the binary input variable and the hypercolumn's
/// categorical variable.
///
/// With `p_i = P(x_i = 1)`, `p_j = P(mcu = j)` and `p_ij = P(x_i = 1, mcu = j)`
/// estimated by the probability traces, the pair contributes
///
/// ```text
/// p_ij · ln(p_ij / (p_i p_j)) + (p_j - p_ij) · ln((p_j - p_ij) / ((1 - p_i) p_j))
/// ```
///
/// i.e. both the "input active" and "input silent" cells of the joint table.
/// Summing over the hypercolumn's minicolumns gives the information score of
/// the connection, which structural plasticity uses to decide which silent
/// connections deserve to be activated.
#[inline(always)]
pub fn mutual_information_term(pi: f32, pj: f32, pij: f32, eps: f32) -> f32 {
    let pi = pi.max(eps);
    // In f32, `1.0 - eps` rounds back to 1.0 for small eps, so floor the
    // complementary probability explicitly instead of clamping pi above.
    let one_minus_pi = (1.0 - pi).max(eps);
    let pj = pj.max(eps);
    let pij = pij.clamp(eps * eps, pj);
    let p_silent_j = (pj - pij).max(eps * eps);
    let active = pij * (pij / (pi * pj)).ln();
    let silent = p_silent_j * (p_silent_j / (one_minus_pi * pj)).ln();
    active + silent
}

/// Exponential-moving-average update used for every probability trace:
/// `trace = (1 - rate) * trace + rate * observation`.
#[inline(always)]
pub fn trace_update(trace: f32, observation: f32, rate: f32) -> f32 {
    (1.0 - rate) * trace + rate * observation
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-8;

    #[test]
    fn independent_variables_have_zero_weight() {
        // p_ij = p_i * p_j  =>  w = ln(1) = 0.
        let w = bcpnn_weight(0.06, 0.2, 0.3, EPS);
        assert!(w.abs() < 1e-5);
    }

    #[test]
    fn correlated_variables_have_positive_weight() {
        let w = bcpnn_weight(0.2, 0.2, 0.3, EPS);
        assert!(w > 0.0);
    }

    #[test]
    fn anticorrelated_variables_have_negative_weight() {
        let w = bcpnn_weight(0.01, 0.2, 0.3, EPS);
        assert!(w < 0.0);
    }

    #[test]
    fn weight_is_finite_even_for_zero_traces() {
        let w = bcpnn_weight(0.0, 0.0, 0.0, EPS);
        assert!(w.is_finite());
    }

    #[test]
    fn bias_is_log_probability() {
        let b = bcpnn_bias(0.5, 1.0, EPS);
        assert!((b - 0.5f32.ln()).abs() < 1e-6);
        let scaled = bcpnn_bias(0.5, 2.0, EPS);
        assert!((scaled - 2.0 * 0.5f32.ln()).abs() < 1e-6);
        assert!(bcpnn_bias(0.0, 1.0, EPS).is_finite());
    }

    #[test]
    fn mi_term_is_zero_for_independence() {
        let mi = mutual_information_term(0.4, 0.25, 0.1, EPS);
        assert!(mi.abs() < 1e-5, "independent => no information, got {mi}");
    }

    #[test]
    fn mi_term_is_positive_for_dependence() {
        // Input perfectly predicts the minicolumn: pij == pj < pi.
        let mi = mutual_information_term(0.5, 0.25, 0.25, EPS);
        assert!(mi > 0.01);
        // Dependence in the "never co-active" direction also carries information.
        let mi2 = mutual_information_term(0.5, 0.25, 0.0, EPS);
        assert!(mi2 > 0.01);
    }

    #[test]
    fn mi_term_is_finite_at_extremes() {
        for &(pi, pj, pij) in &[(0.0f32, 0.0f32, 0.0f32), (1.0, 1.0, 1.0), (0.0, 1.0, 0.5)] {
            assert!(mutual_information_term(pi, pj, pij, EPS).is_finite());
        }
    }

    #[test]
    fn trace_update_interpolates() {
        assert_eq!(trace_update(0.0, 1.0, 0.25), 0.25);
        assert_eq!(trace_update(1.0, 1.0, 0.25), 1.0);
        assert_eq!(trace_update(0.5, 0.0, 0.5), 0.25);
    }
}
