//! Single-threaded reference backend.
//!
//! Every kernel is written as the most direct loop translation of the
//! mathematical definition. This backend is the correctness oracle for the
//! optimised [`ParallelBackend`](crate::ParallelBackend) (the test-suite
//! cross-checks the two on random inputs) and mirrors StreamBrain's plain
//! NumPy backend.

use bcpnn_tensor::Matrix;

use crate::kernels::{bcpnn_bias, bcpnn_weight, mutual_information_term, trace_update};
use crate::traits::{check_forward_shapes, check_mask_shapes, check_trace_shapes, Backend};

/// Straightforward single-threaded implementation of every kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveBackend;

impl NaiveBackend {
    /// Create a new naive backend.
    pub fn new() -> Self {
        Self
    }
}

impl Backend for NaiveBackend {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn linear_forward(
        &self,
        x: &Matrix<f32>,
        weights: &Matrix<f32>,
        bias: &[f32],
        out: &mut Matrix<f32>,
    ) {
        check_forward_shapes(x, weights, bias, out);
        let (batch, n_in) = x.shape();
        let n_units = weights.cols();
        for b in 0..batch {
            let x_row = x.row(b);
            let out_row = out.row_mut(b);
            out_row.copy_from_slice(bias);
            for (i, &xv) in x_row.iter().enumerate().take(n_in) {
                if xv == 0.0 {
                    continue;
                }
                let w_row = weights.row(i);
                for j in 0..n_units {
                    out_row[j] += xv * w_row[j];
                }
            }
        }
    }

    fn grouped_softmax(&self, m: &mut Matrix<f32>, group: usize) {
        // The subtract-max / exp / normalise loop that used to live here is
        // hoisted into the shared dispatch kernel so every backend runs one
        // definition; the scalar tier of that kernel is this backend's old
        // loop bit-for-bit, and the other tiers use the documented
        // `exp_approx` polynomial (relative error ≤ 1e-6).
        bcpnn_tensor::simd::dispatch::softmax_groups_into(m, group);
    }

    fn update_traces(
        &self,
        x: &Matrix<f32>,
        act: &Matrix<f32>,
        rate: f32,
        pi: &mut [f32],
        pj: &mut [f32],
        pij: &mut Matrix<f32>,
    ) {
        check_trace_shapes(x, act, pi, pj, pij);
        let batch = x.rows();
        if batch == 0 {
            return;
        }
        let inv_b = 1.0 / batch as f32;
        // pi: column means of x.
        for (i, p) in pi.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for b in 0..batch {
                s += x.get(b, i);
            }
            *p = trace_update(*p, s * inv_b, rate);
        }
        // pj: column means of act.
        for (j, p) in pj.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for b in 0..batch {
                s += act.get(b, j);
            }
            *p = trace_update(*p, s * inv_b, rate);
        }
        // pij: batch-mean outer product xᵀ·act / B.
        let n_in = x.cols();
        let n_units = act.cols();
        for i in 0..n_in {
            for j in 0..n_units {
                let mut s = 0.0f32;
                for b in 0..batch {
                    s += x.get(b, i) * act.get(b, j);
                }
                let updated = trace_update(pij.get(i, j), s * inv_b, rate);
                pij.set(i, j, updated);
            }
        }
    }

    fn recompute_weights(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        eps: f32,
        bias_gain: f32,
        weights: &mut Matrix<f32>,
        bias: &mut [f32],
    ) {
        assert_eq!(pij.shape(), weights.shape(), "weights must match pij");
        assert_eq!(pij.rows(), pi.len(), "pi must have one entry per input");
        assert_eq!(pij.cols(), pj.len(), "pj must have one entry per unit");
        assert_eq!(pj.len(), bias.len(), "bias must have one entry per unit");
        for i in 0..pij.rows() {
            for j in 0..pij.cols() {
                let w = bcpnn_weight(pij.get(i, j), pi[i], pj[j], eps);
                weights.set(i, j, w);
            }
        }
        for (b, &p) in bias.iter_mut().zip(pj.iter()) {
            *b = bcpnn_bias(p, bias_gain, eps);
        }
    }

    fn apply_mask(
        &self,
        weights: &Matrix<f32>,
        mask: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        check_mask_shapes(weights, mask, n_mcu, out);
        let n_in = weights.rows();
        let n_units = weights.cols();
        for i in 0..n_in {
            for j in 0..n_units {
                let h = j / n_mcu;
                out.set(i, j, weights.get(i, j) * mask.get(h, i));
            }
        }
    }

    fn mutual_information(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        assert!(n_mcu > 0, "n_mcu must be positive");
        assert_eq!(pij.rows(), pi.len(), "pi must have one entry per input");
        assert_eq!(pij.cols(), pj.len(), "pj must have one entry per unit");
        assert_eq!(pij.cols() % n_mcu, 0, "units must be a multiple of n_mcu");
        let n_hcu = pij.cols() / n_mcu;
        assert_eq!(
            (n_hcu, pi.len()),
            out.shape(),
            "MI output must be n_hcu x inputs"
        );
        let eps = 1e-8f32;
        for h in 0..n_hcu {
            for (i, &p_i) in pi.iter().enumerate() {
                let mut mi = 0.0f32;
                for m in 0..n_mcu {
                    let j = h * n_mcu + m;
                    mi += mutual_information_term(p_i, pj[j], pij.get(i, j), eps);
                }
                out.set(h, i, mi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> NaiveBackend {
        NaiveBackend::new()
    }

    #[test]
    fn forward_adds_bias_and_product() {
        // x = [1 0; 0 1], W = [[1,2],[3,4]], bias = [10, 20]
        let x = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let bias = vec![10.0, 20.0];
        let mut out = Matrix::zeros(2, 2);
        backend().linear_forward(&x, &w, &bias, &mut out);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn grouped_softmax_normalises_groups() {
        let mut m = Matrix::from_vec(1, 4, vec![0.0, 1.0, 5.0, 5.0]);
        backend().grouped_softmax(&mut m, 2);
        let row = m.row(0);
        assert!((row[0] + row[1] - 1.0).abs() < 1e-6);
        assert!((row[2] - 0.5).abs() < 1e-6);
        assert!((row[3] - 0.5).abs() < 1e-6);
        assert!(row[1] > row[0]);
    }

    #[test]
    fn trace_update_moves_towards_batch_statistics() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let act = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]);
        let mut pi = vec![0.5f32; 2];
        let mut pj = vec![0.5f32; 2];
        let mut pij = Matrix::filled(2, 2, 0.25f32);
        backend().update_traces(&x, &act, 1.0, &mut pi, &mut pj, &mut pij);
        // With rate 1 the traces become exactly the batch statistics.
        assert_eq!(pi, vec![1.0, 0.0]);
        assert_eq!(pj, vec![0.0, 1.0]);
        assert_eq!(pij.get(0, 1), 1.0);
        assert_eq!(pij.get(0, 0), 0.0);
        assert_eq!(pij.get(1, 1), 0.0);
    }

    #[test]
    fn empty_batch_leaves_traces_untouched() {
        let x = Matrix::zeros(0, 2);
        let act = Matrix::zeros(0, 3);
        let mut pi = vec![0.3f32; 2];
        let mut pj = vec![0.2f32; 3];
        let mut pij = Matrix::filled(2, 3, 0.1f32);
        backend().update_traces(&x, &act, 0.5, &mut pi, &mut pj, &mut pij);
        assert_eq!(pi, vec![0.3, 0.3]);
        assert_eq!(pj, vec![0.2, 0.2, 0.2]);
        assert_eq!(pij.get(1, 2), 0.1);
    }

    #[test]
    fn recompute_weights_matches_formula() {
        let pi = vec![0.5f32, 0.25];
        let pj = vec![0.5f32, 0.5];
        let pij = Matrix::from_vec(2, 2, vec![0.25, 0.1, 0.125, 0.2]);
        let mut w = Matrix::zeros(2, 2);
        let mut b = vec![0.0f32; 2];
        backend().recompute_weights(&pi, &pj, &pij, 1e-8, 1.0, &mut w, &mut b);
        assert!((w.get(0, 0) - (0.25f32 / 0.25).ln()).abs() < 1e-6);
        assert!((w.get(1, 1) - (0.2f32 / 0.125).ln()).abs() < 1e-6);
        assert!((b[0] - 0.5f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn apply_mask_zeroes_masked_out_inputs() {
        // 2 HCUs with 2 MCUs each, 3 inputs.
        let w = Matrix::filled(3, 4, 1.0f32);
        let mask = Matrix::from_vec(2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        let mut out = Matrix::zeros(3, 4);
        backend().apply_mask(&w, &mask, 2, &mut out);
        // HCU 0 (cols 0,1) sees inputs 0 and 2.
        assert_eq!(out.get(0, 0), 1.0);
        assert_eq!(out.get(1, 0), 0.0);
        assert_eq!(out.get(2, 1), 1.0);
        // HCU 1 (cols 2,3) sees input 1 only.
        assert_eq!(out.get(0, 2), 0.0);
        assert_eq!(out.get(1, 3), 1.0);
        assert_eq!(out.get(2, 2), 0.0);
    }

    #[test]
    fn mutual_information_prefers_informative_inputs() {
        // One HCU, 2 MCUs, 2 inputs. Input 0 perfectly predicts the MCU;
        // input 1 is independent of it.
        let pi = vec![0.5f32, 0.5];
        let pj = vec![0.5f32, 0.5];
        // Input 0: pij = [0.5, 0.0]  (active exactly when MCU 0 wins)
        // Input 1: pij = [0.25, 0.25] (independent)
        let pij = Matrix::from_vec(2, 2, vec![0.5, 0.0, 0.25, 0.25]);
        let mut out = Matrix::zeros(1, 2);
        backend().mutual_information(&pi, &pj, &pij, 2, &mut out);
        assert!(
            out.get(0, 0) > out.get(0, 1) + 0.1,
            "informative input must score higher: {:?}",
            out.as_slice()
        );
        assert!(
            out.get(0, 1).abs() < 1e-3,
            "independent input carries ~0 bits"
        );
    }

    #[test]
    #[should_panic(expected = "forward: x has")]
    fn forward_rejects_bad_shapes() {
        let x = Matrix::zeros(2, 3);
        let w = Matrix::zeros(4, 2);
        let bias = vec![0.0; 2];
        let mut out = Matrix::zeros(2, 2);
        backend().linear_forward(&x, &w, &bias, &mut out);
    }
}
