//! # bcpnn-backend
//!
//! Swappable compute backends for the BCPNN kernels, mirroring
//! StreamBrain's NumPy / OpenMP / CUDA / FPGA backend architecture.
//!
//! The [`Backend`] trait defines the six batched kernels the training loop
//! needs (forward pass, grouped softmax, trace update, weight recomputation,
//! mask application, and mutual-information scoring). Two implementations
//! are provided:
//!
//! * [`NaiveBackend`] — single-threaded reference loops (StreamBrain's plain
//!   NumPy backend; used as the correctness oracle),
//! * [`ParallelBackend`] — multi-threaded, GEMM-based kernels on top of
//!   `bcpnn-tensor` and `bcpnn-parallel` (StreamBrain's OpenMP/MKL backend),
//! * [`VectorizedBackend`] — single-threaded, hand-vectorized 8-lane
//!   kernels (cache-blocked, input-major, zero-skipping) that are bit-exact
//!   against [`NaiveBackend`] — the per-core fast path.
//!
//! The paper's CUDA and FPGA backends are hardware we substitute with the
//! threaded CPU backend; see DESIGN.md §2 for the substitution rationale.
//!
//! ```
//! use bcpnn_backend::{Backend, BackendKind};
//! use bcpnn_tensor::{Matrix, MatrixRng};
//!
//! let backend = BackendKind::Parallel.create();
//! let mut rng = MatrixRng::seed_from(0);
//! let x: Matrix<f32> = rng.bernoulli(4, 10, 0.3);
//! let w: Matrix<f32> = rng.normal(10, 6, 0.0, 0.1);
//! let bias = vec![0.0f32; 6];
//! let mut support = Matrix::zeros(4, 6);
//! backend.linear_forward(&x, &w, &bias, &mut support);
//! backend.grouped_softmax(&mut support, 3); // 2 HCUs x 3 MCUs
//! assert!(support.all_finite());
//! ```

#![warn(missing_docs)]

mod dispatch;
pub mod kernels;
mod naive;
mod parallel;
mod traits;
mod vectorized;

pub use dispatch::{default_backend, BackendKind, BACKEND_ENV};
pub use naive::NaiveBackend;
pub use parallel::ParallelBackend;
pub use traits::Backend;
pub use vectorized::VectorizedBackend;
