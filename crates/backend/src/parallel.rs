//! Multi-threaded backend built on the `bcpnn-tensor` GEMM kernels and the
//! `bcpnn-parallel` pool.
//!
//! This backend plays the role of StreamBrain's OpenMP/MKL CPU backend: the
//! forward pass and the joint-trace update are expressed as GEMMs (exactly
//! as described in §II-B of the paper), and the element-wise kernels are
//! parallelised over flat chunks of the underlying storage.

use bcpnn_parallel::par_chunks_mut;
use bcpnn_tensor::{gemm, gemm_tn, Matrix};

use crate::kernels::{bcpnn_bias, bcpnn_weight, mutual_information_term, trace_update};
use crate::traits::{check_forward_shapes, check_mask_shapes, check_trace_shapes, Backend};

/// Multi-threaded GEMM-based implementation of every kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct ParallelBackend;

impl ParallelBackend {
    /// Create a new parallel backend.
    pub fn new() -> Self {
        Self
    }
}

impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn linear_forward(
        &self,
        x: &Matrix<f32>,
        weights: &Matrix<f32>,
        bias: &[f32],
        out: &mut Matrix<f32>,
    ) {
        check_forward_shapes(x, weights, bias, out);
        // out = x · W  (GEMM), then add the bias row to every output row.
        gemm(1.0, x, weights, 0.0, out);
        let cols = out.cols();
        par_chunks_mut(out.as_mut_slice(), cols.max(1), |_, row| {
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        });
    }

    fn grouped_softmax(&self, m: &mut Matrix<f32>, group: usize) {
        // Rows in parallel, each segment through the shared dispatch kernel
        // (same per-segment numerics as the naive/vectorized backends).
        bcpnn_tensor::simd::dispatch::softmax_row_groups_par(m, group);
    }

    fn update_traces(
        &self,
        x: &Matrix<f32>,
        act: &Matrix<f32>,
        rate: f32,
        pi: &mut [f32],
        pj: &mut [f32],
        pij: &mut Matrix<f32>,
    ) {
        check_trace_shapes(x, act, pi, pj, pij);
        let batch = x.rows();
        if batch == 0 {
            return;
        }
        let inv_b = 1.0 / batch as f32;
        // pi / pj: EMA towards the batch column means, accumulated straight
        // into the trace vectors. Summing rows top-to-bottom per column is
        // the same addition order `reduce::col_sums` uses, so this stays
        // bit-identical to the previous temporary-vector formulation while
        // keeping the kernel allocation-free (these sums are O(B·N) next to
        // the O(B·N·U) GEMM below, so serial is fine).
        for (i, p) in pi.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for b in 0..batch {
                s += x.get(b, i);
            }
            *p = trace_update(*p, s * inv_b, rate);
        }
        for (j, p) in pj.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for b in 0..batch {
                s += act.get(b, j);
            }
            *p = trace_update(*p, s * inv_b, rate);
        }
        // pij: EMA towards (xᵀ·act)/B, computed as a transposed GEMM with
        // alpha = rate/B and beta = (1 - rate), i.e. the whole trace update
        // is a single GEMM call — the formulation the paper highlights as
        // accelerator-friendly.
        gemm_tn(rate * inv_b, x, act, 1.0 - rate, pij);
    }

    fn recompute_weights(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        eps: f32,
        bias_gain: f32,
        weights: &mut Matrix<f32>,
        bias: &mut [f32],
    ) {
        assert_eq!(pij.shape(), weights.shape(), "weights must match pij");
        assert_eq!(pij.rows(), pi.len(), "pi must have one entry per input");
        assert_eq!(pij.cols(), pj.len(), "pj must have one entry per unit");
        assert_eq!(pj.len(), bias.len(), "bias must have one entry per unit");
        let n_units = pij.cols();
        let pij_slice = pij.as_slice();
        par_chunks_mut(weights.as_mut_slice(), n_units.max(1), |start, w_row| {
            let i = start / n_units.max(1);
            let p_i = pi[i];
            let p_row = &pij_slice[start..start + w_row.len()];
            for ((w, &p_ij), &p_j) in w_row.iter_mut().zip(p_row.iter()).zip(pj.iter()) {
                *w = bcpnn_weight(p_ij, p_i, p_j, eps);
            }
        });
        for (b, &p) in bias.iter_mut().zip(pj.iter()) {
            *b = bcpnn_bias(p, bias_gain, eps);
        }
    }

    fn apply_mask(
        &self,
        weights: &Matrix<f32>,
        mask: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        check_mask_shapes(weights, mask, n_mcu, out);
        let n_units = weights.cols();
        let w_slice = weights.as_slice();
        par_chunks_mut(out.as_mut_slice(), n_units.max(1), |start, out_row| {
            let i = start / n_units.max(1);
            let w_row = &w_slice[start..start + out_row.len()];
            for (j, (o, &w)) in out_row.iter_mut().zip(w_row.iter()).enumerate() {
                let h = j / n_mcu;
                *o = w * mask.get(h, i);
            }
        });
    }

    fn mutual_information(
        &self,
        pi: &[f32],
        pj: &[f32],
        pij: &Matrix<f32>,
        n_mcu: usize,
        out: &mut Matrix<f32>,
    ) {
        assert!(n_mcu > 0, "n_mcu must be positive");
        assert_eq!(pij.rows(), pi.len(), "pi must have one entry per input");
        assert_eq!(pij.cols(), pj.len(), "pj must have one entry per unit");
        assert_eq!(pij.cols() % n_mcu, 0, "units must be a multiple of n_mcu");
        let n_hcu = pij.cols() / n_mcu;
        assert_eq!(
            (n_hcu, pi.len()),
            out.shape(),
            "MI output must be n_hcu x inputs"
        );
        let eps = 1e-8f32;
        let n_in = pi.len();
        // Parallelise over inputs; each task fills one column of `out`
        // indirectly by computing all HCU scores for its input range. To
        // keep writes disjoint we parallelise over the HCU-major output
        // rows instead.
        let out_cols = out.cols();
        par_chunks_mut(out.as_mut_slice(), out_cols.max(1), |start, out_row| {
            let h = start / out_cols.max(1);
            for (i, o) in out_row.iter_mut().enumerate().take(n_in) {
                let mut mi = 0.0f32;
                for m in 0..n_mcu {
                    let j = h * n_mcu + m;
                    mi += mutual_information_term(pi[i], pj[j], pij.get(i, j), eps);
                }
                *o = mi;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveBackend;
    use bcpnn_tensor::MatrixRng;

    /// Cross-check every kernel of the parallel backend against the naive
    /// reference on random inputs.
    fn random_problem(
        rng: &mut MatrixRng,
        batch: usize,
        n_in: usize,
        n_hcu: usize,
        n_mcu: usize,
    ) -> (Matrix<f32>, Matrix<f32>, Vec<f32>, Matrix<f32>) {
        let n_units = n_hcu * n_mcu;
        let x: Matrix<f32> = rng.bernoulli(batch, n_in, 0.3);
        let w: Matrix<f32> = rng.normal(n_in, n_units, 0.0, 0.5);
        let bias: Vec<f32> = (0..n_units)
            .map(|_| rng.uniform_scalar(-1.0, 0.0))
            .collect();
        let mask: Matrix<f32> = rng.bernoulli(n_hcu, n_in, 0.5);
        (x, w, bias, mask)
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = MatrixRng::seed_from(1);
        let (x, w, bias, _mask) = random_problem(&mut rng, 17, 23, 3, 5);
        let mut out_n = Matrix::zeros(17, 15);
        let mut out_p = Matrix::zeros(17, 15);
        NaiveBackend::new().linear_forward(&x, &w, &bias, &mut out_n);
        ParallelBackend::new().linear_forward(&x, &w, &bias, &mut out_p);
        assert!(out_n.max_abs_diff(&out_p) < 1e-4);
    }

    #[test]
    fn grouped_softmax_matches_naive() {
        let mut rng = MatrixRng::seed_from(2);
        let mut a: Matrix<f32> = rng.normal(9, 12, 0.0, 2.0);
        let mut b = a.clone();
        NaiveBackend::new().grouped_softmax(&mut a, 4);
        ParallelBackend::new().grouped_softmax(&mut b, 4);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn trace_update_matches_naive() {
        let mut rng = MatrixRng::seed_from(3);
        let (x, _w, _bias, _mask) = random_problem(&mut rng, 11, 19, 2, 4);
        let act: Matrix<f32> = {
            let mut a: Matrix<f32> = rng.normal(11, 8, 0.0, 1.0);
            NaiveBackend::new().grouped_softmax(&mut a, 4);
            a
        };
        let mut pi_n: Vec<f32> = (0..19).map(|_| rng.uniform_scalar(0.0, 1.0)).collect();
        let mut pj_n: Vec<f32> = (0..8).map(|_| rng.uniform_scalar(0.0, 1.0)).collect();
        let mut pij_n: Matrix<f32> = rng.uniform(19, 8, 0.0, 0.5);
        let mut pi_p = pi_n.clone();
        let mut pj_p = pj_n.clone();
        let mut pij_p = pij_n.clone();
        NaiveBackend::new().update_traces(&x, &act, 0.05, &mut pi_n, &mut pj_n, &mut pij_n);
        ParallelBackend::new().update_traces(&x, &act, 0.05, &mut pi_p, &mut pj_p, &mut pij_p);
        for (a, b) in pi_n.iter().zip(pi_p.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in pj_n.iter().zip(pj_p.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(pij_n.max_abs_diff(&pij_p) < 1e-4);
    }

    #[test]
    fn recompute_weights_matches_naive() {
        let mut rng = MatrixRng::seed_from(4);
        let pi: Vec<f32> = (0..13).map(|_| rng.uniform_scalar(0.01, 1.0)).collect();
        let pj: Vec<f32> = (0..6).map(|_| rng.uniform_scalar(0.01, 1.0)).collect();
        let pij: Matrix<f32> = rng.uniform(13, 6, 0.0, 0.5);
        let mut w_n = Matrix::zeros(13, 6);
        let mut w_p = Matrix::zeros(13, 6);
        let mut b_n = vec![0.0f32; 6];
        let mut b_p = vec![0.0f32; 6];
        NaiveBackend::new().recompute_weights(&pi, &pj, &pij, 1e-8, 0.7, &mut w_n, &mut b_n);
        ParallelBackend::new().recompute_weights(&pi, &pj, &pij, 1e-8, 0.7, &mut w_p, &mut b_p);
        assert!(w_n.max_abs_diff(&w_p) < 1e-5);
        for (a, b) in b_n.iter().zip(b_p.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_mask_matches_naive() {
        let mut rng = MatrixRng::seed_from(5);
        let (_x, w, _bias, mask) = random_problem(&mut rng, 3, 23, 3, 5);
        let mut out_n = Matrix::zeros(23, 15);
        let mut out_p = Matrix::zeros(23, 15);
        NaiveBackend::new().apply_mask(&w, &mask, 5, &mut out_n);
        ParallelBackend::new().apply_mask(&w, &mask, 5, &mut out_p);
        assert!(out_n.max_abs_diff(&out_p) < 1e-7);
    }

    #[test]
    fn mutual_information_matches_naive() {
        let mut rng = MatrixRng::seed_from(6);
        let pi: Vec<f32> = (0..21).map(|_| rng.uniform_scalar(0.0, 1.0)).collect();
        let pj: Vec<f32> = (0..12).map(|_| rng.uniform_scalar(0.0, 1.0)).collect();
        let pij: Matrix<f32> = rng.uniform(21, 12, 0.0, 0.4);
        let mut out_n = Matrix::zeros(3, 21);
        let mut out_p = Matrix::zeros(3, 21);
        NaiveBackend::new().mutual_information(&pi, &pj, &pij, 4, &mut out_n);
        ParallelBackend::new().mutual_information(&pi, &pj, &pij, 4, &mut out_p);
        assert!(out_n.max_abs_diff(&out_p) < 1e-4);
    }

    #[test]
    fn backend_names_differ() {
        assert_eq!(NaiveBackend::new().name(), "naive");
        assert_eq!(ParallelBackend::new().name(), "parallel");
    }
}
