//! Backend kernel micro-benchmarks: naive vs. parallel implementations of
//! every `Backend` trait operation on a paper-sized layer
//! (280 inputs, 1 HCU × 3000 MCUs, batch 128).
//!
//! This is the ablation behind DESIGN.md's "parallel backend vs. naive
//! backend" entry and the Rust counterpart of StreamBrain's NumPy-vs-OpenMP
//! backend gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bcpnn_backend::{Backend, BackendKind};
use bcpnn_tensor::{Matrix, MatrixRng};

struct Problem {
    x: Matrix<f32>,
    weights: Matrix<f32>,
    bias: Vec<f32>,
    act: Matrix<f32>,
    pi: Vec<f32>,
    pj: Vec<f32>,
    pij: Matrix<f32>,
    mask: Matrix<f32>,
    n_mcu: usize,
}

fn problem(n_mcu: usize) -> Problem {
    let mut rng = MatrixRng::seed_from(3);
    let batch = 128;
    let inputs = 280;
    let units = n_mcu;
    Problem {
        x: rng.bernoulli(batch, inputs, 0.1),
        weights: rng.normal(inputs, units, 0.0, 0.1),
        bias: vec![0.0; units],
        act: rng.uniform(batch, units, 0.0, 1.0),
        pi: (0..inputs)
            .map(|_| rng.uniform_scalar(0.01, 0.99))
            .collect(),
        pj: (0..units).map(|_| rng.uniform_scalar(0.01, 0.99)).collect(),
        pij: rng.uniform(inputs, units, 0.001, 0.5),
        mask: rng.bernoulli(1, inputs, 0.3),
        n_mcu,
    }
}

fn bench_backend_ops(c: &mut Criterion) {
    let n_mcu = 3000;
    let p = problem(n_mcu);
    let backends: Vec<(&str, std::sync::Arc<dyn Backend>)> = vec![
        ("naive", BackendKind::Naive.create()),
        ("parallel", BackendKind::Parallel.create()),
    ];

    let mut group = c.benchmark_group("backend_linear_forward");
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::new(name, n_mcu), &n_mcu, |b, _| {
            let mut out = Matrix::zeros(p.x.rows(), p.weights.cols());
            b.iter(|| backend.linear_forward(black_box(&p.x), &p.weights, &p.bias, &mut out));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("backend_grouped_softmax");
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::new(name, n_mcu), &n_mcu, |b, _| {
            b.iter_batched(
                || p.act.clone(),
                |mut m| backend.grouped_softmax(&mut m, p.n_mcu),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("backend_update_traces");
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::new(name, n_mcu), &n_mcu, |b, _| {
            b.iter_batched(
                || (p.pi.clone(), p.pj.clone(), p.pij.clone()),
                |(mut pi, mut pj, mut pij)| {
                    backend.update_traces(&p.x, &p.act, 0.05, &mut pi, &mut pj, &mut pij)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("backend_recompute_weights");
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::new(name, n_mcu), &n_mcu, |b, _| {
            let mut weights = Matrix::zeros(p.pij.rows(), p.pij.cols());
            let mut bias = vec![0.0f32; p.pj.len()];
            b.iter(|| {
                backend.recompute_weights(&p.pi, &p.pj, &p.pij, 1e-6, 1.0, &mut weights, &mut bias)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("backend_apply_mask");
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::new(name, n_mcu), &n_mcu, |b, _| {
            let mut out = Matrix::zeros(p.weights.rows(), p.weights.cols());
            b.iter(|| backend.apply_mask(&p.weights, &p.mask, p.n_mcu, &mut out));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("backend_mutual_information");
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::new(name, n_mcu), &n_mcu, |b, _| {
            let mut out = Matrix::zeros(1, p.pi.len());
            b.iter(|| backend.mutual_information(&p.pi, &p.pj, &p.pij, p.n_mcu, &mut out));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backend_ops);
criterion_main!(benches);
