//! Whole-training-step benchmarks: the cost model behind Fig. 3 and Fig. 4.
//!
//! * `train_batch_vs_capacity` — one unsupervised batch for increasing
//!   HCU × MCU products (the paper's "training time is a direct function of
//!   the number of MCUs and HCUs").
//! * `train_batch_vs_density` — one unsupervised batch for increasing
//!   receptive-field densities (the paper's "computation is independent of
//!   the receptive-field size").
//! * `plasticity_step_vs_density` — the structural-plasticity update, the
//!   only part whose cost depends on the mask.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bcpnn_backend::BackendKind;
use bcpnn_core::{HiddenLayer, HiddenLayerParams};
use bcpnn_tensor::{Matrix, MatrixRng};

fn layer(n_hcu: usize, n_mcu: usize, density: f64) -> HiddenLayer {
    HiddenLayer::new(
        HiddenLayerParams {
            n_inputs: 280,
            n_hcu,
            n_mcu,
            receptive_field: density,
            ..Default::default()
        },
        BackendKind::Parallel.create(),
        7,
    )
    .expect("valid layer")
}

fn batch(rng: &mut MatrixRng, n: usize) -> Matrix<f32> {
    rng.bernoulli(n, 280, 0.1)
}

fn bench_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_batch_vs_capacity");
    group.sample_size(10);
    let mut rng = MatrixRng::seed_from(11);
    let x = batch(&mut rng, 128);
    for &(n_hcu, n_mcu) in &[(1usize, 30usize), (1, 300), (1, 3000), (4, 300), (8, 300)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_hcu}hcu_x_{n_mcu}mcu")),
            &(n_hcu, n_mcu),
            |b, _| {
                let mut l = layer(n_hcu, n_mcu, 0.30);
                b.iter(|| l.train_batch(black_box(&x)).expect("train_batch succeeds"));
            },
        );
    }
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_batch_vs_density");
    group.sample_size(10);
    let mut rng = MatrixRng::seed_from(13);
    let x = batch(&mut rng, 128);
    for &density in &[0.05f64, 0.30, 0.60, 0.95] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rf_{:02.0}pct", density * 100.0)),
            &density,
            |b, _| {
                let mut l = layer(1, 1000, density);
                b.iter(|| l.train_batch(black_box(&x)).expect("train_batch succeeds"));
            },
        );
    }
    group.finish();
}

fn bench_plasticity_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("plasticity_step_vs_density");
    group.sample_size(10);
    let mut rng = MatrixRng::seed_from(17);
    let x = batch(&mut rng, 256);
    for &density in &[0.05f64, 0.40, 0.95] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rf_{:02.0}pct", density * 100.0)),
            &density,
            |b, _| {
                let mut l = layer(2, 300, density);
                l.train_batch(&x).expect("warm-up batch");
                b.iter(|| black_box(l.structural_plasticity_step()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_capacity,
    bench_density,
    bench_plasticity_step
);
criterion_main!(benches);
