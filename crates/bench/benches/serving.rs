//! Serving-path benchmarks: vectorized pipeline inference at different
//! batch sizes (the amortization the micro-batcher exploits) and full
//! request round-trips through the batching server.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::uncertainty::margin;
use bcpnn_core::{Network, ReadoutKind, TrainingParams, Workspace};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_serve::loadgen::request_stream;
use bcpnn_serve::{
    BatchConfig, CascadeModel, InferenceServer, ModelRegistry, Pipeline, ServedModel, ShardConfig,
    ShardRouting, ShardedServer,
};
use bcpnn_tensor::Matrix;

fn trained_pipeline() -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 2000,
        seed: 5,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(5),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 128,
            ..Default::default()
        },
    )
    .unwrap();
    pipeline
}

/// Per-request cost of one vectorized encode → forward → readout pass at
/// growing batch sizes: the curve whose slope justifies micro-batching.
fn bench_pipeline_batches(c: &mut Criterion) {
    let pipeline = trained_pipeline();
    let stream = request_stream(512, 11);
    let mut group = c.benchmark_group("serve_pipeline_batch");
    group.sample_size(10);
    for &batch in &[1usize, 8, 64, 256] {
        let mut x = Matrix::zeros(batch, 28);
        for r in 0..batch {
            x.row_mut(r).copy_from_slice(stream.row(r % stream.len()));
        }
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| black_box(pipeline.predict_proba(black_box(&x)).unwrap()));
        });
    }
    group.finish();
}

/// The allocating `predict_proba` against the zero-allocation
/// `predict_proba_into` (persistent workspace + output buffer) on the same
/// batch — the tentpole data-plane comparison. Recorded by the CI
/// bench-smoke job; `_into` must at least match the allocating path.
fn bench_forward_into_vs_alloc(c: &mut Criterion) {
    let pipeline = trained_pipeline();
    let stream = request_stream(512, 14);
    let mut group = c.benchmark_group("serve_forward_into_vs_alloc");
    group.sample_size(10);
    for &batch in &[1usize, 64, 256] {
        let mut x = Matrix::zeros(batch, 28);
        for r in 0..batch {
            x.row_mut(r).copy_from_slice(stream.row(r % stream.len()));
        }
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("alloc_predict_proba", batch),
            &batch,
            |b, _| {
                b.iter(|| black_box(pipeline.predict_proba(black_box(&x)).unwrap()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("into_predict_proba", batch),
            &batch,
            |b, _| {
                let mut ws = Workspace::new();
                let mut out = Matrix::zeros(0, 0);
                // Warm the buffers so the measured loop is the steady state.
                pipeline.predict_proba_into(&x, &mut ws, &mut out).unwrap();
                b.iter(|| {
                    pipeline
                        .predict_proba_into(black_box(&x), &mut ws, &mut out)
                        .unwrap();
                    black_box(&out);
                });
            },
        );
    }
    group.finish();
}

/// Full round-trips through the micro-batching server: a single blocking
/// request (latency floor) and a 64-request burst (amortized throughput).
fn bench_server_roundtrip(c: &mut Criterion) {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, trained_pipeline()));
    let server = InferenceServer::start(
        Arc::clone(&registry),
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            workers: 2,
        },
    );
    let stream = request_stream(256, 12);

    let mut group = c.benchmark_group("serve_roundtrip");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("single_blocking", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let features = stream.row(i % stream.len()).to_vec();
            i += 1;
            black_box(server.predict("higgs", features).unwrap())
        });
    });
    group.throughput(Throughput::Elements(64));
    group.bench_function("burst_64", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..64)
                .map(|i| {
                    server
                        .submit("higgs", stream.row(i % stream.len()).to_vec())
                        .unwrap()
                })
                .collect();
            for handle in handles {
                black_box(handle.wait().unwrap());
            }
        });
    });
    group.finish();
}

/// The same 64-request burst through 1, 2, and 4 shards: the scaling curve
/// the sharded router buys once a single collector saturates.
fn bench_sharded_burst(c: &mut Criterion) {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, trained_pipeline()));
    let stream = request_stream(256, 13);
    let mut group = c.benchmark_group("serve_sharded_burst_64");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4] {
        let server = ShardedServer::start(
            Arc::clone(&registry),
            ShardConfig {
                shards,
                batch: BatchConfig {
                    max_batch: 64,
                    max_wait: Duration::from_micros(200),
                    workers: 1,
                },
                routing: ShardRouting::FeatureHash,
            },
        );
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, _| {
            b.iter(|| {
                let handles: Vec<_> = (0..64)
                    .map(|i| {
                        server
                            .submit("higgs", stream.row(i % stream.len()).to_vec())
                            .unwrap()
                    })
                    .collect();
                for handle in handles {
                    black_box(handle.wait().unwrap());
                }
            });
        });
    }
    group.finish();
}

/// The compact cascade front: the same training data as
/// [`trained_pipeline`], but a coarser quantile encode and a quarter of
/// the hidden units — then int8-quantized. This is the deployment shape
/// of a cascade's cheap tier: a model small enough that running it on
/// *every* row costs a fraction of one f32 pass.
fn compact_pipeline() -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 2000,
        seed: 5,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        6,
        Network::builder()
            .hidden(2, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(5),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 128,
            ..Default::default()
        },
    )
    .unwrap();
    pipeline
}

/// The cascade's full tier: the same synthetic-Higgs task at production
/// scale — a 40-bin quantile encode into a 32×32 hypercolumn hidden
/// layer (the shape the backend kernel benches use), where the forward
/// GEMM, not the per-row encode, is the dominant cost. That is the
/// regime a cascade exists for: every row the cheap tier answers skips
/// a genuinely expensive pass.
fn heavy_pipeline() -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 768,
        seed: 5,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        40,
        Network::builder()
            .hidden(32, 32, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(5),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 128,
            ..Default::default()
        },
    )
    .unwrap();
    pipeline
}

/// The quantized→f32 cascade against each tier alone on the same mixed
/// 256-row batch. The cheap tier is the int8-quantized *compact* model
/// (a same-size quantization cannot win end-to-end: encode, readout,
/// and softmax stay f32 and dominate, so only a smaller front makes the
/// cascade pay off); the full tier is the heavy f32 pipeline benchmarked
/// as `f32`. With the escalation threshold calibrated so ~65% of rows
/// stay cheap, the cascade must beat running f32 on everything — that
/// relative claim (`serve_cascade/cascade/256 < serve_cascade/f32/256`)
/// is asserted machine-readably by CI's bench-regression job, so a
/// routing or gather/scatter regression that erases the cheap tier's
/// win fails the build.
fn bench_cascade(c: &mut Criterion) {
    let batch = 256usize;
    let stream = request_stream(512, 15);
    let mut x = Matrix::zeros(batch, 28);
    for r in 0..batch {
        x.row_mut(r).copy_from_slice(stream.row(r % stream.len()));
    }

    let pipeline = heavy_pipeline();
    let cheap = QuantizedPipeline::quantize(&compact_pipeline(), QuantPrecision::Int8).unwrap();
    // Escalate the lowest-margin ~35% of this batch, calibrated from the
    // cheap tier's own margins — the same policy the accuracy gate uses.
    let proba = cheap.predict_proba(&x).unwrap();
    let mut margins: Vec<f32> = (0..batch).map(|r| margin(proba.row(r))).collect();
    margins.sort_by(f32::total_cmp);
    let threshold = margins[batch * 35 / 100];
    // Both builders are deterministic, so the cascade's tiers are
    // bit-identical to the standalone ones benchmarked alongside them.
    let cascade = CascadeModel::new(
        "bench",
        Box::new(QuantizedPipeline::quantize(&compact_pipeline(), QuantPrecision::Int8).unwrap()),
        Box::new(heavy_pipeline()),
        threshold,
    )
    .unwrap();

    let mut group = c.benchmark_group("serve_cascade");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_with_input(BenchmarkId::new("f32", batch), &batch, |b, _| {
        b.iter(|| black_box(pipeline.predict_proba(black_box(&x)).unwrap()));
    });
    group.bench_with_input(BenchmarkId::new("int8_compact", batch), &batch, |b, _| {
        b.iter(|| black_box(cheap.predict_proba(black_box(&x)).unwrap()));
    });
    group.bench_with_input(BenchmarkId::new("cascade", batch), &batch, |b, _| {
        b.iter(|| black_box(cascade.predict_proba(black_box(&x)).unwrap()));
    });
    group.finish();
}

criterion_group!(
    serving,
    bench_pipeline_batches,
    bench_forward_into_vs_alloc,
    bench_server_roundtrip,
    bench_sharded_burst,
    bench_cascade
);
criterion_main!(serving);
