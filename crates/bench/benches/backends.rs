//! Backend and precision benchmarks behind the CI `bench-regression` gate.
//!
//! Three questions, one machine-readable answer each (set `BENCH_JSON` to
//! collect them as JSONL for `bench_compare`):
//!
//! * `backend_forward/*` — does the cache-blocked, lane-unrolled
//!   [`VectorizedBackend`] beat the scalar [`NaiveBackend`] on the batched
//!   forward pass? (It streams each weight row once per *batch* instead of
//!   once per batch *row*.)
//! * `backend_traces/*` — same comparison for the training-side trace
//!   update, the other bandwidth-bound hot kernel.
//! * `backend_forward/tier_*` — the same forward pass with the SIMD
//!   dispatch tier pinned to scalar / lanes / avx2, isolating what the
//!   explicit-intrinsics tier buys over the autovectorized one.
//! * `softmax_exp/*` — the grouped-softmax kernel per dispatch tier; this
//!   is where the polynomial `exp_approx` replaces libm `expf`.
//! * `quantized_predict/*` — tokens-per-core: end-to-end single-threaded
//!   `predict_proba_into` for the f32 pipeline against its int8 and bf16
//!   [`QuantizedPipeline`] counterparts, as rows/sec
//!   (`Throughput::Elements`).
//!
//! When `BENCH_JSON` is set, the binary first emits a `{"meta":{...}}`
//! record naming the detected CPU feature set and active dispatch tier, so
//! the committed baseline states which machine class produced it.

use std::hint::black_box;

use criterion::{criterion_group, BatchSize, BenchmarkId, Criterion, Throughput};

use bcpnn_backend::{Backend, BackendKind, NaiveBackend, ParallelBackend, VectorizedBackend};
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams, Workspace};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_tensor::simd::dispatch::{self, SimdTier};
use bcpnn_tensor::{Matrix, MatrixRng};

/// The three dispatch tiers, benchmarked under their `BCPNN_SIMD` names.
/// On a machine without AVX2 the `avx2` entry silently degrades to the
/// lanes tier (same rule as the env override), so the bench runs anywhere;
/// CI only asserts `avx2 < lanes` on runners that advertise AVX2.
const TIERS: [(&str, SimdTier); 3] = [
    ("scalar", SimdTier::Scalar),
    ("lanes", SimdTier::Lanes),
    ("avx2", SimdTier::Avx2),
];

/// Serving-shaped forward problem: quantile-encoded sparse binary input
/// (28 active columns of 280) into a hidden layer big enough that weight
/// traffic, not arithmetic, is the bottleneck. The forward matrix
/// (280 x 8192 ≈ 9 MB of f32) deliberately exceeds L2: the batch-major
/// naive kernel re-streams every active weight row once per batch row,
/// while the input-major blocked kernel streams the matrix once per batch —
/// that traffic gap is what `backend_forward` exists to show. The trace
/// matrix stays smaller because the naive trace update walks all of
/// `n_in x n_out` regardless of sparsity.
const BATCH: usize = 64;
const N_IN: usize = 280;
const FWD_OUT: usize = 8192;
const TIER_BATCH: usize = 16;
const TIER_OUT: usize = 1024;
const TRACE_OUT: usize = 1024;

fn sparse_input(rows: usize) -> Matrix<f32> {
    // One active bin per 10-bin feature group, like the quantile encoder.
    Matrix::from_fn(rows, N_IN, |r, c| {
        let feature = c / 10;
        let hot = (r * 7 + feature * 3) % 10;
        f32::from(c % 10 == hot)
    })
}

fn bench_backend_forward(c: &mut Criterion) {
    let mut rng = MatrixRng::seed_from(21);
    let x = sparse_input(BATCH);
    let weights = rng.uniform(N_IN, FWD_OUT, -0.5, 0.5);
    let bias: Vec<f32> = rng.uniform(1, FWD_OUT, -0.1, 0.1).into_vec();
    let mut out = Matrix::zeros(BATCH, FWD_OUT);

    let backends: [(&str, Box<dyn Backend>); 3] = [
        ("naive", Box::new(NaiveBackend::new())),
        ("parallel", Box::new(ParallelBackend::new())),
        ("vectorized", Box::new(VectorizedBackend::new())),
    ];
    let mut group = c.benchmark_group("backend_forward");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                backend.linear_forward(black_box(&x), &weights, &bias, &mut out);
                black_box(&out);
            });
        });
    }
    // The same blocked kernel with the dispatch tier pinned, so the CI
    // relative claim `tier_avx2 < tier_lanes` measures the intrinsics
    // against the autovectorized lanes. Unlike the streaming comparison
    // above, this one is shaped to be *compute*-bound — a small batch whose
    // active output blocks stay L1-resident (16 rows x 2 KiB) over a
    // moderate 280 x 1024 weight matrix: at the 9 MB streaming shape every
    // tier saturates memory bandwidth and the ordering is noise, while here
    // the arithmetic width of the axpy kernel is what's measured.
    group.throughput(Throughput::Elements(TIER_BATCH as u64));
    let tier_x = sparse_input(TIER_BATCH);
    let tier_weights = rng.uniform(N_IN, TIER_OUT, -0.5, 0.5);
    let tier_bias: Vec<f32> = rng.uniform(1, TIER_OUT, -0.1, 0.1).into_vec();
    let mut tier_out = Matrix::zeros(TIER_BATCH, TIER_OUT);
    for (name, tier) in TIERS {
        let backend = VectorizedBackend::with_tier(tier);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("tier_{name}")),
            &backend,
            |b, backend| {
                b.iter(|| {
                    backend.linear_forward(
                        black_box(&tier_x),
                        &tier_weights,
                        &tier_bias,
                        &mut tier_out,
                    );
                    black_box(&tier_out);
                });
            },
        );
    }
    group.finish();
}

/// Serving-shaped grouped softmax: the readout emits one support column per
/// class per hypercolumn, normalized in groups. 1024 columns in groups of
/// 32 is the hidden-layer shape the `predict` hot path sees.
const SOFTMAX_COLS: usize = 1024;
const SOFTMAX_GROUP: usize = 32;

fn bench_softmax_exp(c: &mut Criterion) {
    let mut rng = MatrixRng::seed_from(26);
    let src = rng.uniform(BATCH, SOFTMAX_COLS, -6.0, 6.0);

    let mut group = c.benchmark_group("softmax_exp");
    // One element per exp evaluation, so the rate reads as exp/sec.
    group.throughput(Throughput::Elements((BATCH * SOFTMAX_COLS) as u64));
    for (name, tier) in TIERS {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            // Softmax normalizes in place; clone per measured call (setup is
            // untimed) so every tier transforms the same raw supports.
            b.iter_batched(
                || src.clone(),
                |mut m| {
                    dispatch::softmax_groups_into_with(tier, &mut m, SOFTMAX_GROUP);
                    m
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_backend_traces(c: &mut Criterion) {
    let mut rng = MatrixRng::seed_from(22);
    let x = sparse_input(BATCH);
    let act = rng.uniform(BATCH, TRACE_OUT, 0.0, 1.0);

    let backends: [(&str, Box<dyn Backend>); 3] = [
        ("naive", Box::new(NaiveBackend::new())),
        ("parallel", Box::new(ParallelBackend::new())),
        ("vectorized", Box::new(VectorizedBackend::new())),
    ];
    let mut group = c.benchmark_group("backend_traces");
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, backend) in &backends {
        let mut pi = vec![0.01f32; N_IN];
        let mut pj = vec![0.01f32; TRACE_OUT];
        let mut pij = Matrix::filled(N_IN, TRACE_OUT, 0.001);
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                backend.update_traces(
                    black_box(&x),
                    black_box(&act),
                    0.01,
                    &mut pi,
                    &mut pj,
                    &mut pij,
                );
                black_box(pij.get(0, 0));
            });
        });
    }
    group.finish();
}

/// A pipeline shaped so the int8 weight-footprint advantage is visible:
/// 40 quantile bins x 28 features = 1120 encoded inputs into 32x32 hidden
/// units puts the f32 hidden weights at ~4.6 MB (spilling a typical L2)
/// while the int8 copy (~1.1 MB) stays L2-resident. Trained just enough to
/// be a real fitted artifact — prediction cost does not depend on how well
/// it converged.
fn fitted_pipeline() -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 768,
        seed: 23,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        40,
        Network::builder()
            .hidden(32, 32, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(23),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 128,
            ..Default::default()
        },
    )
    .unwrap();
    pipeline
}

/// The narrow-weight kernel in isolation: the hidden-layer forward over the
/// same fitted tensors at f32, int8 and bf16 storage. This is where the
/// footprint advantage lives — the softmax and readout that end-to-end
/// prediction adds on top cost the same at every precision.
fn bench_quantized_forward(c: &mut Criterion) {
    let pipeline = fitted_pipeline();
    let requests = generate(&SyntheticHiggsConfig {
        n_samples: BATCH,
        seed: 25,
        ..Default::default()
    });
    let encoded = pipeline.encode(&requests.features).unwrap();
    let hidden = pipeline.network().hidden();
    let weights = hidden.masked_weights();
    let bias = hidden.bias();
    let naive = NaiveBackend::new();
    let mut out = Matrix::zeros(BATCH, weights.cols());

    let mut group = c.benchmark_group("quantized_forward");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("f32", |b| {
        b.iter(|| {
            naive.linear_forward(black_box(&encoded), weights, bias, &mut out);
            black_box(&out);
        });
    });
    for (name, precision) in [
        ("int8", QuantPrecision::Int8),
        ("bf16", QuantPrecision::Bf16),
    ] {
        let quantized = QuantizedPipeline::quantize(&pipeline, precision).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                quantized.hidden_forward_into(black_box(&encoded), &mut out);
                black_box(&out);
            });
        });
    }
    group.finish();
}

fn bench_quantized_predict(c: &mut Criterion) {
    let pipeline = fitted_pipeline();
    let requests = generate(&SyntheticHiggsConfig {
        n_samples: BATCH,
        seed: 24,
        ..Default::default()
    });
    let x = &requests.features;

    // Single-threaded f32 reference: same network, naive backend, so every
    // contender below is a per-core number.
    let f32_pipeline = {
        let dir = std::env::temp_dir().join(format!("bcpnn_bench_backends_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        pipeline.save(&dir).unwrap();
        let reloaded = bcpnn_core::load_pipeline(&dir, BackendKind::Naive).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        reloaded
    };

    let mut group = c.benchmark_group("quantized_predict");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("f32", |b| {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);
        f32_pipeline
            .predict_proba_into(x, &mut ws, &mut out)
            .unwrap();
        b.iter(|| {
            f32_pipeline
                .predict_proba_into(black_box(x), &mut ws, &mut out)
                .unwrap();
            black_box(&out);
        });
    });
    for (name, precision) in [
        ("int8", QuantPrecision::Int8),
        ("bf16", QuantPrecision::Bf16),
    ] {
        let quantized = QuantizedPipeline::quantize(&pipeline, precision).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let mut ws = Workspace::new();
            let mut out = Matrix::zeros(0, 0);
            quantized.predict_proba_into(x, &mut ws, &mut out).unwrap();
            b.iter(|| {
                quantized
                    .predict_proba_into(black_box(x), &mut ws, &mut out)
                    .unwrap();
                black_box(&out);
            });
        });
    }
    group.finish();
}

criterion_group!(
    backends,
    bench_backend_forward,
    bench_backend_traces,
    bench_softmax_exp,
    bench_quantized_forward,
    bench_quantized_predict
);

/// Append a `{"meta":{...}}` record to `BENCH_JSON` (when set) stating the
/// CPU feature set the dispatch probe detected and the tier it selected —
/// `bench_compare` folds it into the canonical baseline and the CI summary.
fn emit_bench_meta() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // Feature names and tier names are fixed identifier strings, so no JSON
    // escaping is needed.
    let line = format!(
        "{{\"meta\":{{\"cpu_features\":\"{}\",\"simd_tier\":\"{}\"}}}}\n",
        dispatch::cpu_features(),
        dispatch::active_tier().as_str()
    );
    use std::io::Write as _;
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("BENCH_JSON: could not append meta to {path}: {e}");
    }
}

fn main() {
    emit_bench_meta();
    backends();
}
