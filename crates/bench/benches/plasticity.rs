//! Structural-plasticity micro-benchmarks: mutual-information scoring and
//! the swap policy, isolated from the rest of the training step.
//!
//! Fig. 4's near-flat timing curve rests on this being cheap relative to the
//! GEMMs ("only the structural plasticity, which is quite rarely updated, is
//! affected" by the receptive-field size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bcpnn_backend::BackendKind;
use bcpnn_core::{PlasticityConfig, ProbabilityTraces, ReceptiveFieldMask, StructuralPlasticity};
use bcpnn_tensor::MatrixRng;

fn bench_mi_scores(c: &mut Criterion) {
    let mut group = c.benchmark_group("plasticity_mi_scores");
    group.sample_size(10);
    let backend = BackendKind::Parallel.create();
    for &(n_hcu, n_mcu) in &[(1usize, 300usize), (1, 3000), (4, 300)] {
        let traces = ProbabilityTraces::new(280, n_hcu * n_mcu, n_mcu, 0.1);
        let plasticity = StructuralPlasticity::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_hcu}hcu_x_{n_mcu}mcu")),
            &n_mcu,
            |b, _| {
                b.iter(|| {
                    black_box(plasticity.scores(backend.as_ref(), black_box(&traces), n_mcu, n_hcu))
                });
            },
        );
    }
    group.finish();
}

fn bench_swap_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("plasticity_swap_policy");
    group.sample_size(20);
    let mut rng = MatrixRng::seed_from(5);
    let scores = rng.uniform::<f32>(4, 280, 0.0, 1.0);
    for &swaps in &[1usize, 8, 32] {
        let plasticity = StructuralPlasticity::new(PlasticityConfig {
            max_swaps: swaps,
            min_improvement: 1e-6,
        });
        group.bench_with_input(BenchmarkId::from_parameter(swaps), &swaps, |b, _| {
            b.iter_batched(
                || ReceptiveFieldMask::random(4, 280, 84, &mut rng.clone()),
                |mut mask| black_box(plasticity.update(&mut mask, &scores)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mi_scores, bench_swap_policy);
criterion_main!(benches);
