//! GEMM kernel micro-benchmarks.
//!
//! §II-B of the paper argues that the BCPNN training step is GEMM-dominated
//! and therefore maps well onto BLAS-backed accelerators. This bench
//! quantifies the three tiers of the `bcpnn-tensor` substrate (naive,
//! cache-blocked, parallel) on BCPNN-shaped problems: the forward product
//! `X(batch x 280) · W(280 x units)` and the trace update
//! `Xᵀ(280 x batch) · Π(batch x units)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bcpnn_tensor::{gemm, gemm_blocked, gemm_naive, gemm_tn, Matrix, MatrixRng};

fn bench_forward_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_forward");
    group.sample_size(10);
    let batch = 128;
    let inputs = 280;
    for &units in &[300usize, 1200, 3000] {
        let mut rng = MatrixRng::seed_from(1);
        let x: Matrix<f32> = rng.bernoulli(batch, inputs, 0.1);
        let w: Matrix<f32> = rng.normal(inputs, units, 0.0, 0.1);
        let flops = 2 * batch * inputs * units;
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_with_input(BenchmarkId::new("naive", units), &units, |b, _| {
            let mut out = Matrix::zeros(batch, units);
            b.iter(|| gemm_naive(1.0, black_box(&x), black_box(&w), 0.0, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("blocked", units), &units, |b, _| {
            let mut out = Matrix::zeros(batch, units);
            b.iter(|| gemm_blocked(1.0, black_box(&x), black_box(&w), 0.0, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("parallel", units), &units, |b, _| {
            let mut out = Matrix::zeros(batch, units);
            b.iter(|| gemm(1.0, black_box(&x), black_box(&w), 0.0, &mut out));
        });
    }
    group.finish();
}

fn bench_trace_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_trace_update");
    group.sample_size(10);
    let batch = 128;
    let inputs = 280;
    for &units in &[300usize, 3000] {
        let mut rng = MatrixRng::seed_from(2);
        let x: Matrix<f32> = rng.bernoulli(batch, inputs, 0.1);
        let act: Matrix<f32> = rng.uniform(batch, units, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("gemm_tn", units), &units, |b, _| {
            let mut pij = Matrix::zeros(inputs, units);
            b.iter(|| {
                gemm_tn(
                    0.05 / batch as f32,
                    black_box(&x),
                    black_box(&act),
                    0.95,
                    &mut pij,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward_gemm, bench_trace_gemm);
criterion_main!(benches);
