//! Preprocessing benchmarks: synthetic-Higgs generation, quantile fitting,
//! and the one-hot / thermometer encoders (§V's preprocessing pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bcpnn_data::encode::{QuantileEncoder, ThermometerEncoder};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("higgs_generation");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(generate(&SyntheticHiggsConfig {
                    n_samples: n,
                    ..Default::default()
                }))
            });
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 20_000,
        ..Default::default()
    });
    let mut group = c.benchmark_group("higgs_encoding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.n_samples() as u64));

    group.bench_function("quantile_fit", |b| {
        b.iter(|| black_box(QuantileEncoder::fit(black_box(&data), 10)));
    });
    let one_hot = QuantileEncoder::fit(&data, 10);
    group.bench_function("one_hot_transform", |b| {
        b.iter(|| black_box(one_hot.transform(black_box(&data))));
    });
    let thermo = ThermometerEncoder::fit(&data, 10);
    group.bench_function("thermometer_transform", |b| {
        b.iter(|| black_box(thermo.transform(black_box(&data))));
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_encoding);
criterion_main!(benches);
