//! **Fig. 3 — network capacity vs. accuracy and training time.**
//!
//! The paper sweeps the number of hypercolumns (1, 2, 4, 6, 8) for three
//! minicolumn counts (30, 300, 3000 MCUs per HCU) at a fixed 30 %
//! receptive field, trains each configuration 10 times, and reports the
//! mean test accuracy (bars) and training time in seconds (lines).
//!
//! This binary regenerates that figure as a table and a CSV
//! (`results/fig3_capacity.csv`). Default sizes are scaled down so the full
//! sweep finishes in minutes on a laptop CPU; pass `--full` (and optionally
//! `--reps 10`) for a paper-scale run.
//!
//! ```text
//! cargo run --release -p bcpnn-bench --bin fig3_capacity -- --reps 3
//! ```

use bcpnn_bench::args::Args;
use bcpnn_bench::table::{pct, secs, Table};
use bcpnn_bench::{prepare_higgs, run_repeated, BcpnnRunConfig, HiggsDataConfig};

fn main() {
    let args = Args::from_env();
    let full = args.has("full");
    let reps: usize = args.get_or("reps", if full { 10 } else { 3 });
    let train_per_class: usize = args.get_or("train", if full { 20_000 } else { 3_000 });
    let test_per_class: usize = args.get_or("test", if full { 10_000 } else { 1_500 });
    let hcus: Vec<usize> = args.get_list_or("hcus", &[1, 2, 4, 6, 8]);
    let mcus: Vec<usize> = args.get_list_or(
        "mcus",
        if full {
            &[30, 300, 3000]
        } else {
            &[30, 300, 1000]
        },
    );
    let unsup: usize = args.get_or("unsup-epochs", 3);
    let sup: usize = args.get_or("sup-epochs", 5);
    let seed: u64 = args.get_or("seed", 2021);

    println!("== Fig. 3: #HCUs vs. accuracy and training time ==");
    println!(
        "train {train_per_class}/class, test {test_per_class}/class, {reps} repetitions, 30% receptive field"
    );
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class,
        test_per_class,
        separation: args.get_or("separation", HiggsDataConfig::default().separation),
        seed,
        ..Default::default()
    });
    println!("encoded input width: {}\n", data.encoded_width());

    let mut table = Table::new(&[
        "MCUs/HCU",
        "HCUs",
        "accuracy (mean)",
        "accuracy (std)",
        "AUC",
        "train time",
    ]);
    let mut csv_rows = Vec::new();
    for &n_mcu in &mcus {
        for &n_hcu in &hcus {
            let cfg = BcpnnRunConfig {
                n_hcu,
                n_mcu,
                receptive_field: 0.30,
                unsupervised_epochs: unsup,
                supervised_epochs: sup,
                ..Default::default()
            };
            let (_, agg) = run_repeated(&cfg, &data, reps, seed + (n_mcu * 10 + n_hcu) as u64);
            table.add_row(&[
                n_mcu.to_string(),
                n_hcu.to_string(),
                pct(agg.mean_accuracy),
                format!("{:.2}", agg.std_accuracy * 100.0),
                format!("{:.3}", agg.mean_auc),
                secs(agg.mean_time_s),
            ]);
            csv_rows.push(format!(
                "{n_mcu},{n_hcu},{:.6},{:.6},{:.6},{:.6},{:.6}",
                agg.mean_accuracy, agg.std_accuracy, agg.mean_auc, agg.mean_time_s, agg.std_time_s
            ));
            println!(
                "  [{n_mcu} MCUs x {n_hcu} HCUs] accuracy {} | time {}",
                pct(agg.mean_accuracy),
                secs(agg.mean_time_s)
            );
        }
    }
    println!();
    table.print();
    match bcpnn_bench::write_csv(
        "fig3_capacity.csv",
        "n_mcu,n_hcu,mean_accuracy,std_accuracy,mean_auc,mean_time_s,std_time_s",
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
    println!(
        "\nExpected shape (paper): capacity inside one HCU dominates (30 -> 300 MCUs gains ~5 points,\n\
         300 -> 3000 much less); extra HCUs give <1 point; training time grows with HCUs x MCUs."
    );
}
