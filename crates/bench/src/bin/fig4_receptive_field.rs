//! **Fig. 4 — receptive-field density vs. accuracy and training time.**
//!
//! The paper fixes a single HCU with 3000 MCUs and sweeps the
//! receptive-field density from 5 % to 95 %: accuracy is at chance below
//! ~10 %, climbs to its maximum (68.58 %) around 40 %, and saturates;
//! training time is almost flat (111 s → 132.9 s) because the computation
//! is independent of the mask density.
//!
//! This binary regenerates that sweep (table + `results/fig4_receptive_field.csv`).
//! Defaults are scaled down; pass `--full` for the 3000-MCU configuration.
//!
//! ```text
//! cargo run --release -p bcpnn-bench --bin fig4_receptive_field -- --reps 3
//! ```

use bcpnn_bench::args::Args;
use bcpnn_bench::table::{pct, secs, Table};
use bcpnn_bench::{prepare_higgs, run_repeated, BcpnnRunConfig, HiggsDataConfig};

fn main() {
    let args = Args::from_env();
    let full = args.has("full");
    let reps: usize = args.get_or("reps", if full { 10 } else { 3 });
    let train_per_class: usize = args.get_or("train", if full { 20_000 } else { 3_000 });
    let test_per_class: usize = args.get_or("test", if full { 10_000 } else { 1_500 });
    let n_mcu: usize = args.get_or("mcu", if full { 3000 } else { 1000 });
    let seed: u64 = args.get_or("seed", 2021);
    let densities: Vec<f64> = args.get_list_or(
        "densities",
        &[0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95],
    );

    println!("== Fig. 4: receptive-field density vs. accuracy and training time ==");
    println!("1 HCU x {n_mcu} MCUs, train {train_per_class}/class, {reps} repetitions\n");
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class,
        test_per_class,
        separation: args.get_or("separation", HiggsDataConfig::default().separation),
        seed,
        ..Default::default()
    });

    let mut table = Table::new(&["receptive field", "accuracy", "AUC", "train time"]);
    let mut csv_rows = Vec::new();
    let mut best = (0.0f64, 0.0f64);
    for &density in &densities {
        let cfg = BcpnnRunConfig {
            n_hcu: 1,
            n_mcu,
            receptive_field: density,
            ..Default::default()
        };
        let (_, agg) = run_repeated(&cfg, &data, reps, seed + (density * 100.0) as u64);
        if agg.mean_accuracy > best.1 {
            best = (density, agg.mean_accuracy);
        }
        table.add_row(&[
            format!("{:.0}%", density * 100.0),
            pct(agg.mean_accuracy),
            format!("{:.3}", agg.mean_auc),
            secs(agg.mean_time_s),
        ]);
        csv_rows.push(format!(
            "{density},{:.6},{:.6},{:.6},{:.6},{:.6}",
            agg.mean_accuracy, agg.std_accuracy, agg.mean_auc, agg.mean_time_s, agg.std_time_s
        ));
        println!(
            "  [rf {:>3.0}%] accuracy {} | time {}",
            density * 100.0,
            pct(agg.mean_accuracy),
            secs(agg.mean_time_s)
        );
    }
    println!();
    table.print();
    println!(
        "\nbest density {:.0}% with accuracy {}",
        best.0 * 100.0,
        pct(best.1)
    );
    match bcpnn_bench::write_csv(
        "fig4_receptive_field.csv",
        "receptive_field,mean_accuracy,std_accuracy,mean_auc,mean_time_s,std_time_s",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write CSV: {e}"),
    }
    println!(
        "\nExpected shape (paper): near-chance accuracy below ~10% density, a peak around 40%,\n\
         no further gain beyond it, and training time nearly independent of the density."
    );
}
