//! **Fig. 2 — in-situ observation of the receptive fields during training.**
//!
//! The paper trains 4 HCUs with a 40 % receptive-field density on the Higgs
//! data and watches the masks develop epoch by epoch through ParaView
//! Catalyst (red = active connection, blue = silent).
//!
//! This binary reproduces that run with the [`bcpnn_viz::InSituObserver`]:
//! every unsupervised epoch's masks are exported as ParaView-loadable
//! `.vti` files and `.pgm` images under `results/fig2_insitu/`, a per-epoch
//! timeline CSV is written, and the per-epoch number of structural-
//! plasticity swaps (how much the fields are still moving) is printed.
//!
//! ```text
//! cargo run --release -p bcpnn-bench --bin fig2_insitu
//! ```

use bcpnn_bench::args::Args;
use bcpnn_bench::table::{pct, Table};
use bcpnn_bench::{build_network, build_trainer, prepare_higgs, BcpnnRunConfig, HiggsDataConfig};
use bcpnn_core::TrainingObserver;
use bcpnn_viz::{InSituObserver, MaskHistory};

fn main() {
    let args = Args::from_env();
    let full = args.has("full");
    let train_per_class: usize = args.get_or("train", if full { 20_000 } else { 3_000 });
    let test_per_class: usize = args.get_or("test", 1_000);
    let n_mcu: usize = args.get_or("mcu", if full { 3000 } else { 300 });
    let epochs: usize = args.get_or("epochs", 8);
    let seed: u64 = args.get_or("seed", 2021);

    println!("== Fig. 2: in-situ visualization of receptive-field development ==");
    println!("4 HCUs, 40% receptive field, {n_mcu} MCUs/HCU, {epochs} unsupervised epochs\n");
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class,
        test_per_class,
        separation: args.get_or("separation", HiggsDataConfig::default().separation),
        seed,
        ..Default::default()
    });
    let cfg = BcpnnRunConfig {
        n_hcu: 4,
        n_mcu,
        receptive_field: 0.40,
        unsupervised_epochs: epochs,
        supervised_epochs: 3,
        ..Default::default()
    };
    let out_dir = bcpnn_bench::results_dir().join("fig2_insitu");
    let mut observer = InSituObserver::new(&out_dir);
    let history = MaskHistory::new();
    let mut network = build_network(&cfg, data.encoded_width(), seed);
    let mut history_handle = &history;
    let report = {
        let observers: &mut [&mut dyn TrainingObserver] = &mut [&mut observer, &mut history_handle];
        build_trainer(&cfg, seed)
            .fit_with_observers(&mut network, &data.x_train, &data.y_train, observers)
            .expect("training failed")
    };
    if let Err(e) = observer.write_timeline() {
        eprintln!("failed to write timeline: {e}");
    }
    if !observer.errors().is_empty() {
        eprintln!("in-situ export errors: {:?}", observer.errors());
    }

    let mut table = Table::new(&["epoch", "plasticity swaps", "epoch time (s)"]);
    for stats in report
        .epochs
        .iter()
        .filter(|e| e.phase == bcpnn_core::TrainingPhase::Unsupervised)
    {
        table.add_row(&[
            stats.epoch.to_string(),
            stats
                .plasticity_swaps
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.2}", stats.duration.as_secs_f64()),
        ]);
    }
    table.print();

    let eval = network
        .evaluate(&data.x_test, &data.y_test)
        .expect("evaluation failed");
    println!(
        "\nfinal test accuracy {} (AUC {:.3})",
        pct(eval.accuracy),
        eval.auc
    );
    println!(
        "mask snapshots per epoch: {} ({}% of connections moved between the first and last epoch)",
        history.len(),
        (history.total_change_fraction() * 100.0).round()
    );
    println!(
        "VTI/PGM snapshots and timeline.csv written under {}",
        out_dir.display()
    );
    println!(
        "\nExpected shape (paper): the per-epoch VTI snapshots show the receptive fields drifting most\n\
         in the early epochs and stabilising as training progresses (fewer swaps per epoch)."
    );
}
