//! **Related-work comparison (§VI) — BCPNN vs. conventional classifiers.**
//!
//! The paper positions its 75.5–76.4 % AUC against the ~81.6 % AUC of a
//! shallow MLP and ~88 % of a deep network reported by Baldi et al. on the
//! same task. This binary regenerates that comparison on identical inputs:
//!
//! * BCPNN (associative readout) and BCPNN + SGD on the one-hot quantile
//!   encoding,
//! * logistic regression (softmax SGD) on the same encoding,
//! * a one-hidden-layer backprop MLP on standardized raw features.
//!
//! The expected *shape* is that the gradient-trained discriminative models
//! beat BCPNN on AUC, exactly as the paper concedes.
//!
//! ```text
//! cargo run --release -p bcpnn-bench --bin baselines
//! ```

use bcpnn_bench::args::Args;
use bcpnn_bench::table::{pct, secs, Table};
use bcpnn_bench::{prepare_higgs, run_bcpnn, BcpnnRunConfig, HiggsDataConfig};
use bcpnn_core::baseline::{MlpClassifier, MlpParams};
use bcpnn_core::metrics::EvalReport;
use bcpnn_core::{ReadoutKind, SgdClassifier, SgdParams};
use bcpnn_data::encode::Standardizer;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let full = args.has("full");
    let train_per_class: usize = args.get_or("train", if full { 20_000 } else { 4_000 });
    let test_per_class: usize = args.get_or("test", if full { 10_000 } else { 2_000 });
    let n_mcu: usize = args.get_or("mcu", if full { 3000 } else { 1000 });
    let epochs: usize = args.get_or("epochs", 15);
    let seed: u64 = args.get_or("seed", 2021);

    println!("== Baseline comparison on identical data (paper §VI) ==\n");
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class,
        test_per_class,
        separation: args.get_or("separation", HiggsDataConfig::default().separation),
        seed,
        ..Default::default()
    });

    let mut table = Table::new(&["model", "input", "accuracy", "AUC", "train time"]);
    let mut csv_rows: Vec<String> = Vec::new();
    let mut record =
        |name: &str, input: &str, report: &EvalReport, time_s: f64, table: &mut Table| {
            table.add_row(&[
                name.into(),
                input.into(),
                pct(report.accuracy),
                format!("{:.3}", report.auc),
                secs(time_s),
            ]);
            csv_rows.push(format!(
                "{name},{input},{:.6},{:.6},{:.6}",
                report.accuracy, report.auc, time_s
            ));
        };

    // --- BCPNN and BCPNN+SGD ------------------------------------------------
    let cfg = BcpnnRunConfig {
        n_hcu: 1,
        n_mcu,
        receptive_field: 0.40,
        readout: ReadoutKind::Hybrid,
        ..Default::default()
    };
    let outcome = run_bcpnn(&cfg, &data, seed);
    record(
        "BCPNN (associative readout)",
        "one-hot quantiles (280)",
        outcome.bcpnn.as_ref().expect("hybrid trains both heads"),
        outcome.train_time_s,
        &mut table,
    );
    record(
        "BCPNN + SGD (hybrid)",
        "one-hot quantiles (280)",
        &outcome.primary,
        outcome.train_time_s,
        &mut table,
    );

    // --- Logistic regression on the same encoding ---------------------------
    let t0 = Instant::now();
    let mut logreg = SgdClassifier::new(data.encoded_width(), 2, SgdParams::default(), seed)
        .expect("valid logistic regression");
    logreg
        .fit(&data.x_train, &data.y_train, epochs, 128, seed ^ 0xa1)
        .expect("logistic regression training failed");
    let lr_time = t0.elapsed().as_secs_f64();
    let lr_proba = logreg
        .predict_proba(&data.x_test)
        .expect("prediction failed");
    record(
        "Logistic regression (SGD)",
        "one-hot quantiles (280)",
        &EvalReport::from_probabilities(&lr_proba, &data.y_test),
        lr_time,
        &mut table,
    );

    // --- MLP on standardized raw features -----------------------------------
    let standardizer = Standardizer::fit(&data.raw_train);
    let z_train = standardizer.transform(&data.raw_train);
    let z_test = standardizer.transform(&data.raw_test);
    let t0 = Instant::now();
    let mut mlp = MlpClassifier::new(
        z_train.cols(),
        2,
        MlpParams {
            hidden_units: args.get_or("mlp-hidden", 128),
            ..Default::default()
        },
        seed,
    )
    .expect("valid MLP");
    mlp.fit(&z_train, &data.raw_train.labels, epochs, 128, seed ^ 0xa2)
        .expect("MLP training failed");
    let mlp_time = t0.elapsed().as_secs_f64();
    let mlp_proba = mlp.predict_proba(&z_test).expect("prediction failed");
    record(
        "MLP (1 hidden layer, backprop)",
        "standardized raw features (28)",
        &EvalReport::from_probabilities(&mlp_proba, &data.raw_test.labels),
        mlp_time,
        &mut table,
    );

    table.print();
    println!(
        "\nPaper reference points: BCPNN 0.755 AUC, BCPNN+SGD 0.764 AUC, shallow MLP ~0.816 AUC,\n\
         deep network ~0.88 AUC (Baldi et al.). Expected shape: the gradient-trained models beat BCPNN on AUC."
    );
    match bcpnn_bench::write_csv(
        "baselines.csv",
        "model,input,accuracy,auc,train_time_s",
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
}
