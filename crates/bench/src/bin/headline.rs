//! **Headline numbers (§V-A, §VII) — pure BCPNN vs. BCPNN + SGD.**
//!
//! The paper's best single-HCU configuration (1 HCU × 3000 MCUs, 40 %
//! receptive field) reaches 68.58 % accuracy / 75.5 % AUC with the pure
//! BCPNN readout and 69.15 % / 76.4 % AUC when the unsupervised BCPNN
//! features are combined with an SGD-trained classification layer.
//!
//! This binary trains that configuration (repeated over several seeds),
//! reports both heads from the same trained networks, and writes
//! `results/headline.csv`. Absolute values differ from the paper (synthetic
//! data, CPU backend — see EXPERIMENTS.md); the reproduced *shape* is that
//! the hybrid head adds a small (≈0.5–1 point) improvement over the
//! associative readout.
//!
//! ```text
//! cargo run --release -p bcpnn-bench --bin headline -- --reps 5
//! ```

use bcpnn_bench::args::Args;
use bcpnn_bench::table::{pct, Table};
use bcpnn_bench::{prepare_higgs, run_bcpnn, BcpnnRunConfig, HiggsDataConfig};
use bcpnn_core::ReadoutKind;

fn main() {
    let args = Args::from_env();
    let full = args.has("full");
    let reps: usize = args.get_or("reps", if full { 10 } else { 5 });
    let train_per_class: usize = args.get_or("train", if full { 20_000 } else { 4_000 });
    let test_per_class: usize = args.get_or("test", if full { 10_000 } else { 2_000 });
    let n_mcu: usize = args.get_or("mcu", if full { 3000 } else { 1000 });
    let density: f64 = args.get_or("density", 0.40);
    let seed: u64 = args.get_or("seed", 2021);

    println!("== Headline: pure BCPNN vs. BCPNN + SGD hybrid ==");
    println!(
        "1 HCU x {n_mcu} MCUs, {:.0}% receptive field, {reps} repetitions\n",
        density * 100.0
    );
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class,
        test_per_class,
        separation: args.get_or("separation", HiggsDataConfig::default().separation),
        seed,
        ..Default::default()
    });
    let cfg = BcpnnRunConfig {
        n_hcu: 1,
        n_mcu,
        receptive_field: density,
        readout: ReadoutKind::Hybrid,
        unsupervised_epochs: args.get_or("unsup-epochs", 4),
        supervised_epochs: args.get_or("sup-epochs", 8),
        ..Default::default()
    };

    let mut bcpnn_acc = Vec::new();
    let mut bcpnn_auc = Vec::new();
    let mut hybrid_acc = Vec::new();
    let mut hybrid_auc = Vec::new();
    let mut csv_rows = Vec::new();
    for r in 0..reps {
        let outcome = run_bcpnn(&cfg, &data, seed + r as u64);
        let bcpnn = outcome
            .bcpnn
            .as_ref()
            .expect("hybrid run trains the BCPNN head");
        bcpnn_acc.push(bcpnn.accuracy);
        bcpnn_auc.push(bcpnn.auc);
        hybrid_acc.push(outcome.primary.accuracy);
        hybrid_auc.push(outcome.primary.auc);
        csv_rows.push(format!(
            "{r},{:.6},{:.6},{:.6},{:.6},{:.6}",
            bcpnn.accuracy,
            bcpnn.auc,
            outcome.primary.accuracy,
            outcome.primary.auc,
            outcome.train_time_s
        ));
        println!(
            "  rep {r}: BCPNN {} / AUC {:.3} | BCPNN+SGD {} / AUC {:.3} | {:.1}s",
            pct(bcpnn.accuracy),
            bcpnn.auc,
            pct(outcome.primary.accuracy),
            outcome.primary.auc,
            outcome.train_time_s
        );
    }
    let mean = |v: &[f64]| bcpnn_tensor::stats::mean(v);

    let mut table = Table::new(&["head", "accuracy", "AUC", "paper reference"]);
    table.add_row(&[
        "BCPNN (associative readout)".into(),
        pct(mean(&bcpnn_acc)),
        format!("{:.3}", mean(&bcpnn_auc)),
        "68.58% / 0.755".into(),
    ]);
    table.add_row(&[
        "BCPNN + SGD (hybrid)".into(),
        pct(mean(&hybrid_acc)),
        format!("{:.3}", mean(&hybrid_auc)),
        "69.15% / 0.764".into(),
    ]);
    println!();
    table.print();
    let delta = (mean(&hybrid_acc) - mean(&bcpnn_acc)) * 100.0;
    println!("\nhybrid head improvement over the associative readout: {delta:+.2} accuracy points");
    match bcpnn_bench::write_csv(
        "headline.csv",
        "rep,bcpnn_accuracy,bcpnn_auc,hybrid_accuracy,hybrid_auc,train_time_s",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write CSV: {e}"),
    }
}
