//! Compare a benchmark run against the committed baseline — the CLI behind
//! the CI `bench-regression` job.
//!
//! ```sh
//! # Run the benches with machine-readable output, then compare:
//! BENCH_JSON=bench.jsonl cargo bench -p bcpnn-bench --bench backends
//! cargo run -p bcpnn-bench --bin bench_compare -- \
//!     --current bench.jsonl --baseline ci/bench-baseline.json \
//!     --threshold 40 \
//!     --assert-faster "backend_forward/vectorized<backend_forward/naive"
//!
//! # Refresh the committed baseline in one command:
//! ci/refresh-bench-baseline.sh
//! ```
//!
//! Exit status is non-zero when any bench regressed past the threshold,
//! vanished from the run, or a `--assert-faster` claim failed. Absolute
//! thresholds guard the *committed* baseline (same class of machine in CI);
//! `--assert-faster` claims are relative and hold anywhere.

use std::io::Write as _;
use std::process::ExitCode;

use bcpnn_bench::benchjson::{
    assert_faster, canonical_report_with_meta, compare, markdown_table, parse_report_full,
    BenchMeta, BenchRecord,
};

struct Options {
    current: String,
    baseline: Option<String>,
    threshold_pct: f64,
    write_baseline: Option<String>,
    claims: Vec<String>,
    summary: Option<String>,
}

fn usage() -> String {
    "usage: bench_compare --current <bench.json|jsonl> [--baseline <baseline.json>]\n\
     \x20                 [--threshold <pct, default 40>] [--write-baseline <path>]\n\
     \x20                 [--assert-faster \"fast<slow\"]... [--summary <path>]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        current: String::new(),
        baseline: None,
        threshold_pct: 40.0,
        write_baseline: None,
        claims: Vec::new(),
        summary: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--current" => opts.current = value()?,
            "--baseline" => opts.baseline = Some(value()?),
            "--threshold" => {
                opts.threshold_pct = value()?
                    .parse()
                    .map_err(|_| "--threshold expects a number (percent)".to_string())?;
            }
            "--write-baseline" => opts.write_baseline = Some(value()?),
            "--assert-faster" => opts.claims.push(value()?),
            "--summary" => opts.summary = Some(value()?),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if opts.current.is_empty() {
        return Err(format!("--current is required\n{}", usage()));
    }
    Ok(opts)
}

fn load_records(path: &str) -> Result<(Vec<BenchRecord>, BenchMeta), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_report_full(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(opts: &Options) -> Result<(), String> {
    let (current, meta) = load_records(&opts.current)?;
    eprintln!(
        "loaded {} benchmark(s) from {}",
        current.len(),
        opts.current
    );

    let mut failures: Vec<String> = Vec::new();
    let mut summary_text = String::new();

    if !meta.is_empty() {
        summary_text.push_str("### Run metadata\n\n");
        for (key, value) in &meta {
            let line = format!("- `{key}`: {value}");
            println!("{line}");
            summary_text.push_str(&line);
            summary_text.push('\n');
        }
        summary_text.push('\n');
    }

    if let Some(baseline_path) = &opts.baseline {
        let (baseline, _) = load_records(baseline_path)?;
        let report = compare(&current, &baseline, opts.threshold_pct);
        let table = markdown_table(&report);
        print!("{table}");
        summary_text.push_str(&table);
        for row in report.failures() {
            failures.push(match row.delta_pct {
                Some(d) => format!(
                    "{}: {d:+.1}% vs baseline (threshold {:.0}%)",
                    row.name, opts.threshold_pct
                ),
                None => format!("{}: present in baseline but not measured", row.name),
            });
        }
    }

    if !opts.claims.is_empty() {
        summary_text.push_str("\n### Relative speed claims\n\n");
        for claim in &opts.claims {
            match assert_faster(&current, claim) {
                Ok(speedup) => {
                    let line = format!("- `{claim}` holds ({speedup:.2}x)");
                    println!("{line}");
                    summary_text.push_str(&line);
                    summary_text.push('\n');
                }
                Err(e) => {
                    let line = format!("- `{claim}` **FAILED**: {e}");
                    println!("{line}");
                    summary_text.push_str(&line);
                    summary_text.push('\n');
                    failures.push(e);
                }
            }
        }
    }

    if let Some(path) = &opts.summary {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(summary_text.as_bytes()))
            .map_err(|e| format!("cannot append summary to {path}: {e}"))?;
    }

    if let Some(path) = &opts.write_baseline {
        std::fs::write(path, canonical_report_with_meta(&current, &meta))
            .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
        eprintln!("wrote canonical baseline to {path}");
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} benchmark check(s) failed:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
