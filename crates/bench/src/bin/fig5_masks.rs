//! **Fig. 5 — final receptive-field masks across densities.**
//!
//! The paper shows the mask a single HCU ends up with for every
//! receptive-field size from 0 % to 95 %: larger budgets cover more of the
//! input, and the connections chosen at a small budget are not necessarily
//! a subset of those chosen at a larger one.
//!
//! This binary trains one network per density, renders the final mask per
//! physics feature in the terminal, writes each mask as `.pgm` + `.vti`
//! under `results/fig5_masks/`, and reports (a) how much of the mask is
//! spent on the pure-noise azimuthal-angle features and (b) the overlap
//! between consecutive densities' masks.
//!
//! ```text
//! cargo run --release -p bcpnn-bench --bin fig5_masks
//! ```

use bcpnn_bench::args::Args;
use bcpnn_bench::table::Table;
use bcpnn_bench::{build_network, build_trainer, prepare_higgs, BcpnnRunConfig, HiggsDataConfig};
use bcpnn_data::higgs::{noise_feature_indices, FEATURE_NAMES};
use bcpnn_viz::{save_pgm, save_vti};

fn main() {
    let args = Args::from_env();
    let full = args.has("full");
    let train_per_class: usize = args.get_or("train", if full { 20_000 } else { 2_000 });
    let test_per_class: usize = args.get_or("test", 500);
    let n_mcu: usize = args.get_or("mcu", if full { 3000 } else { 300 });
    let seed: u64 = args.get_or("seed", 2021);
    let densities: Vec<f64> = args.get_list_or(
        "densities",
        &[0.05, 0.10, 0.20, 0.30, 0.40, 0.60, 0.80, 0.95],
    );

    println!("== Fig. 5: evolution of the receptive-field mask with its size ==\n");
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class,
        test_per_class,
        separation: args.get_or("separation", HiggsDataConfig::default().separation),
        seed,
        ..Default::default()
    });
    let n_bins = data.encoder.n_bins();
    let out_dir = bcpnn_bench::results_dir().join("fig5_masks");
    let feature_names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let noise_features = noise_feature_indices();

    let mut table = Table::new(&[
        "receptive field",
        "active connections",
        "on noise features",
        "accuracy",
    ]);
    let mut prev_mask: Option<Vec<usize>> = None;
    let mut overlaps = Vec::new();
    for &density in &densities {
        let cfg = BcpnnRunConfig {
            n_hcu: 1,
            n_mcu,
            receptive_field: density,
            ..Default::default()
        };
        let mut network = build_network(&cfg, data.encoded_width(), seed);
        build_trainer(&cfg, seed)
            .fit(&mut network, &data.x_train, &data.y_train)
            .expect("training failed");
        let eval = network
            .evaluate(&data.x_test, &data.y_test)
            .expect("evaluation failed");
        let mask = network.hidden().receptive_field_snapshot();
        // Count how many active connections sit on the pure-noise features.
        let row = mask.row(0);
        let active: Vec<usize> = row
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 1.0)
            .map(|(i, _)| i)
            .collect();
        let on_noise = active
            .iter()
            .filter(|&&col| noise_features.contains(&(col / n_bins)))
            .count();
        if let Some(prev) = &prev_mask {
            let prev_set: std::collections::HashSet<usize> = prev.iter().copied().collect();
            let inter = active.iter().filter(|i| prev_set.contains(i)).count();
            overlaps.push((density, inter as f64 / prev.len().max(1) as f64));
        }
        table.add_row(&[
            format!("{:.0}%", density * 100.0),
            active.len().to_string(),
            format!(
                "{on_noise} ({:.0}%)",
                100.0 * on_noise as f64 / active.len().max(1) as f64
            ),
            bcpnn_bench::table::pct(eval.accuracy),
        ]);
        // Terminal rendering: per-feature mask occupancy for this density.
        println!("--- receptive field {:.0}% ---", density * 100.0);
        println!(
            "{}",
            bcpnn_viz::ascii::render_feature_mask(row, &feature_names, n_bins)
        );
        // Persist mask images (the paper's grid of mask snapshots).
        let tag = format!("rf_{:03.0}", density * 100.0);
        if let Err(e) = save_pgm(&mask, out_dir.join(format!("{tag}.pgm"))) {
            eprintln!("failed to write PGM: {e}");
        }
        if let Err(e) = save_vti(&mask, "receptive_field", out_dir.join(format!("{tag}.vti"))) {
            eprintln!("failed to write VTI: {e}");
        }
        prev_mask = Some(active);
    }
    table.print();
    println!("\nOverlap with the previous (smaller) mask:");
    for (density, overlap) in overlaps {
        println!(
            "  {:>3.0}%: {:.0}% of the smaller mask's connections kept",
            density * 100.0,
            overlap * 100.0
        );
    }
    println!("\nmask images written under {}", out_dir.display());
    println!(
        "\nExpected shape (paper): larger budgets cover more of the input; the best connections at a\n\
         small budget are not necessarily included at a larger one; noise features attract few connections."
    );
}
