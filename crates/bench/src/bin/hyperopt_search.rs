//! **Hyperparameter search (§IV) — the Ax/Nevergrad stand-in in action.**
//!
//! The paper notes that BCPNN's many use-case-dependent hyperparameters
//! were tuned with the Adaptive Experimentation Platform (Ax) and
//! Nevergrad. This binary runs the `bcpnn-hyperopt` substitutes (random
//! search and a (1 + λ) evolution strategy) over the canonical BCPNN search
//! space, using validation accuracy on a small Higgs subset as the
//! objective, and reports the best configuration found by each.
//!
//! ```text
//! cargo run --release -p bcpnn-bench --bin hyperopt_search -- --budget 20
//! ```

use bcpnn_bench::args::Args;
use bcpnn_bench::table::{pct, Table};
use bcpnn_bench::{prepare_higgs, run_bcpnn, BcpnnRunConfig, HiggsDataConfig};
use bcpnn_hyperopt::{
    space::bcpnn_higgs_space, EvolutionConfig, EvolutionSearch, ParamSet, RandomSearch,
};

/// Translate a sampled parameter set into a run configuration.
fn config_from(params: &ParamSet) -> BcpnnRunConfig {
    BcpnnRunConfig {
        n_hcu: params["n_hcu"].as_i64() as usize,
        n_mcu: params["n_mcu"]
            .as_str()
            .parse()
            .expect("categorical MCU count"),
        receptive_field: params["receptive_field"].as_f64(),
        trace_rate: params["trace_rate"].as_f64() as f32,
        support_noise: params["support_noise"].as_f64() as f32,
        unsupervised_epochs: 2,
        supervised_epochs: 3,
        ..Default::default()
    }
}

fn main() {
    let args = Args::from_env();
    let budget: usize = args.get_or("budget", 16);
    let train_per_class: usize = args.get_or("train", 1_500);
    let test_per_class: usize = args.get_or("test", 750);
    let seed: u64 = args.get_or("seed", 2021);

    println!(
        "== Hyperparameter search over the BCPNN space (budget {budget} evaluations each) ==\n"
    );
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class,
        test_per_class,
        separation: args.get_or("separation", HiggsDataConfig::default().separation),
        seed,
        ..Default::default()
    });
    let space = bcpnn_higgs_space();
    let objective = |params: &ParamSet| -> f64 {
        let cfg = config_from(params);
        // Cap the evaluation cost: huge MCU counts are evaluated on the
        // same data but dominate the runtime, which is exactly the trade-off
        // a practitioner faces; keep them but warn.
        run_bcpnn(&cfg, &data, seed).primary.accuracy
    };

    println!("-- random search --");
    let random = RandomSearch::new(space.clone(), seed).run(budget, objective);
    for t in random.trials() {
        println!("  trial {:>2}: accuracy {}", t.index, pct(t.score));
    }
    println!("-- (1+λ) evolution strategy --");
    let es = EvolutionSearch::new(
        space,
        EvolutionConfig {
            offspring: 4,
            mutation_rate: 0.5,
            seed,
        },
    )
    .run(budget, objective);
    for t in es.trials() {
        println!("  trial {:>2}: accuracy {}", t.index, pct(t.score));
    }

    let mut table = Table::new(&["strategy", "best accuracy", "best configuration"]);
    for (name, history) in [("random search", &random), ("evolution strategy", &es)] {
        let best = history.best().expect("non-empty history");
        let cfg = config_from(&best.params);
        table.add_row(&[
            name.into(),
            pct(best.score),
            format!(
                "{} HCU x {} MCU, rf {:.0}%, trace_rate {:.3}",
                cfg.n_hcu,
                cfg.n_mcu,
                cfg.receptive_field * 100.0,
                cfg.trace_rate
            ),
        ]);
    }
    println!();
    table.print();
    match bcpnn_bench::write_csv(
        "hyperopt_random.csv",
        "trial,score,best_so_far,params",
        &random
            .to_csv()
            .lines()
            .skip(1)
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write CSV: {e}"),
    }
    if let Ok(path) = bcpnn_bench::write_csv(
        "hyperopt_evolution.csv",
        "trial,score,best_so_far,params",
        &es.to_csv()
            .lines()
            .skip(1)
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    ) {
        println!("wrote {}", path.display());
    }
}
