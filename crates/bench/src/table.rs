//! Plain-text table rendering for the experiment binaries (the printed
//! counterpart of the paper's figures).

/// A simple fixed-width text table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn add_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..n_cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a fraction as a percentage with two decimals (`0.6858` → `68.58%`).
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Format seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}s")
}

/// Format a mean ± standard deviation pair.
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.3} ± {std:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["config", "accuracy", "time"]);
        t.add_row(&[
            "1 HCU".to_string(),
            "68.58%".to_string(),
            "86.6s".to_string(),
        ]);
        t.add_row(&[
            "8 HCU x 3000 MCU".to_string(),
            "69.15%".to_string(),
            "606.0s".to_string(),
        ]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("config"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].contains("69.15%"));
        // Columns align: "accuracy" starts at the same offset in all rows.
        let col = lines[0].find("accuracy").unwrap();
        assert_eq!(&lines[2][col..col + 6], "68.58%");
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn add_row_validates_width() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(&["only one".to_string()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.6858), "68.58%");
        assert_eq!(secs(86.64), "86.6s");
        assert_eq!(mean_std(0.5, 0.01), "0.500 ± 0.010");
    }
}
