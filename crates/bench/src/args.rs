//! A tiny `--flag value` command-line parser for the experiment binaries
//! (no external CLI dependency needed for seven binaries with a handful of
//! numeric flags each).

use std::collections::BTreeMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from an explicit token list (used by tests).
    pub fn parse_from<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, String> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {tok:?}"));
            };
            if name.is_empty() {
                return Err("empty flag name".into());
            }
            // A flag is a switch when the next token is another flag (or
            // nothing); otherwise it consumes one value.
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    args.flags.insert(name.to_string(), value);
                }
                _ => args.switches.push(name.to_string()),
            }
        }
        Ok(args)
    }

    /// Parse from the process arguments (skipping the binary name), exiting
    /// with a message on malformed input.
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("flags take the form `--name value` or `--switch`");
                std::process::exit(2);
            }
        }
    }

    /// Whether a boolean switch (e.g. `--full`) was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A flag value parsed as `T`, or `default` when absent.
    ///
    /// # Panics
    /// Exits the process when the value cannot be parsed (this is CLI
    /// surface, not library surface).
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flags.get(name) {
            None => default,
            Some(raw) => raw.parse::<T>().unwrap_or_else(|_| {
                eprintln!("error: flag --{name} has invalid value {raw:?}");
                std::process::exit(2);
            }),
        }
    }

    /// The raw string value of a flag, if present.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// A comma-separated list flag parsed element-wise, or `default` when
    /// absent.
    pub fn get_list_or<T>(&self, name: &str, default: &[T]) -> Vec<T>
    where
        T: std::str::FromStr + Clone,
    {
        match self.flags.get(name) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .map(|tok| {
                    tok.trim().parse::<T>().unwrap_or_else(|_| {
                        eprintln!("error: flag --{name} has invalid element {tok:?}");
                        std::process::exit(2);
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse_from(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = parse(&["--reps", "5", "--full", "--train", "8000"]);
        assert_eq!(a.get_or("reps", 1usize), 5);
        assert_eq!(a.get_or("train", 0usize), 8000);
        assert!(a.has("full"));
        assert!(!a.has("quick"));
        assert_eq!(a.get_or("missing", 7u32), 7);
        assert_eq!(a.get_str("reps"), Some("5"));
        assert_eq!(a.get_str("nope"), None);
    }

    #[test]
    fn parses_lists() {
        let a = parse(&["--mcus", "30,300,3000"]);
        assert_eq!(a.get_list_or("mcus", &[1usize]), vec![30, 300, 3000]);
        assert_eq!(a.get_list_or("hcus", &[1usize, 2]), vec![1, 2]);
    }

    #[test]
    fn trailing_switch_is_a_switch() {
        let a = parse(&["--reps", "3", "--verbose"]);
        assert!(a.has("verbose"));
        assert_eq!(a.get_or("reps", 0usize), 3);
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = Args::parse_from(vec!["oops".to_string()]).unwrap_err();
        assert!(err.contains("positional"));
    }
}
