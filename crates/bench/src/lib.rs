//! # bcpnn-bench
//!
//! Experiment harness reproducing every table and figure of
//! *"Higgs Boson Classification: Brain-inspired BCPNN Learning with
//! StreamBrain"* (CLUSTER 2021).
//!
//! Each figure has a dedicated binary (see `src/bin/`): `fig2_insitu`,
//! `fig3_capacity`, `fig4_receptive_field`, `fig5_masks`, `headline`,
//! `baselines`, and `hyperopt_search`. The binaries print the same
//! rows/series the paper reports and write CSVs under `results/` (or
//! `$BCPNN_RESULTS_DIR`). Criterion micro-benchmarks of the kernels live in
//! `benches/`.
//!
//! This library holds the pieces the binaries share: Higgs data
//! preparation (synthetic generator → balanced subset → quantile one-hot
//! encoding), a single-run driver, repetition/aggregation (the paper
//! averages 10 repetitions per configuration), simple table printing and
//! CSV output, and a tiny CLI-flag parser.

#![warn(missing_docs)]

use std::path::PathBuf;

use bcpnn_backend::BackendKind;
use bcpnn_core::model::NetworkEstimator;
use bcpnn_core::{EvalReport, HiddenLayerParams, Network, ReadoutKind, Trainer, TrainingParams};
use bcpnn_data::encode::QuantileEncoder;
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::split::{balanced_subset, stratified_split};
use bcpnn_data::Dataset;
use bcpnn_tensor::Matrix;

pub mod args;
pub mod benchjson;
pub mod table;

/// Seed mask applied to derive the shuffling seed from the run seed, so the
/// weight-initialisation and shuffling streams are decorrelated.
const TRAIN_SEED_MASK: u64 = 0x7421_9abc_55aa_0134;

/// Encoded Higgs experiment data shared by all runs of one experiment.
#[derive(Debug, Clone)]
pub struct HiggsExperimentData {
    /// Encoded (binary one-hot) training inputs.
    pub x_train: Matrix<f32>,
    /// Training labels.
    pub y_train: Vec<usize>,
    /// Encoded test inputs.
    pub x_test: Matrix<f32>,
    /// Test labels.
    pub y_test: Vec<usize>,
    /// Raw (unencoded) training subset, for baselines on continuous features.
    pub raw_train: Dataset,
    /// Raw test subset.
    pub raw_test: Dataset,
    /// The fitted encoder (for mask/feature introspection).
    pub encoder: QuantileEncoder,
}

impl HiggsExperimentData {
    /// Width of the encoded input (e.g. 280 = 28 features × 10 bins).
    pub fn encoded_width(&self) -> usize {
        self.x_train.cols()
    }
}

/// Configuration of the Higgs data preparation.
#[derive(Debug, Clone, PartialEq)]
pub struct HiggsDataConfig {
    /// Balanced training samples **per class**.
    pub train_per_class: usize,
    /// Balanced test samples **per class**.
    pub test_per_class: usize,
    /// Quantile bins per feature (the paper uses 10).
    pub n_bins: usize,
    /// Class separation of the synthetic generator.
    pub separation: f64,
    /// RNG seed for generation, splitting and subsetting.
    pub seed: u64,
}

impl Default for HiggsDataConfig {
    fn default() -> Self {
        Self {
            train_per_class: 4000,
            test_per_class: 2000,
            n_bins: 10,
            separation: 0.45,
            seed: 2021,
        }
    }
}

/// Generate, split, balance and encode the Higgs data exactly as §V of the
/// paper describes (balanced subset → per-feature 10-quantiles → one-hot).
pub fn prepare_higgs(config: &HiggsDataConfig) -> HiggsExperimentData {
    // Generate a pool large enough to carve balanced subsets out of.
    let pool_size = (config.train_per_class + config.test_per_class) * 5;
    let full = generate(&SyntheticHiggsConfig {
        n_samples: pool_size.max(1000),
        separation: config.separation,
        seed: config.seed,
        ..Default::default()
    });
    let (train_pool, test_pool) = stratified_split(&full, 0.35, config.seed ^ 0x51);
    let raw_train = balanced_subset(&train_pool, config.train_per_class, config.seed ^ 0x52);
    let raw_test = balanced_subset(&test_pool, config.test_per_class, config.seed ^ 0x53);
    let encoder = QuantileEncoder::fit(&raw_train, config.n_bins);
    let x_train = encoder.transform(&raw_train);
    let x_test = encoder.transform(&raw_test);
    HiggsExperimentData {
        y_train: raw_train.labels.clone(),
        y_test: raw_test.labels.clone(),
        x_train,
        x_test,
        raw_train,
        raw_test,
        encoder,
    }
}

/// Configuration of one BCPNN run (the knobs the paper's figures sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct BcpnnRunConfig {
    /// Number of hypercolumns.
    pub n_hcu: usize,
    /// Minicolumns per hypercolumn.
    pub n_mcu: usize,
    /// Receptive-field density in (0, 1].
    pub receptive_field: f64,
    /// Unsupervised epochs.
    pub unsupervised_epochs: usize,
    /// Supervised epochs.
    pub supervised_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Probability-trace EMA rate.
    pub trace_rate: f32,
    /// Support noise during unsupervised training.
    pub support_noise: f32,
    /// Which classification head(s) to train.
    pub readout: ReadoutKind,
    /// Compute backend.
    pub backend: BackendKind,
}

impl Default for BcpnnRunConfig {
    fn default() -> Self {
        Self {
            n_hcu: 1,
            n_mcu: 300,
            receptive_field: 0.30,
            unsupervised_epochs: 3,
            supervised_epochs: 8,
            batch_size: 128,
            trace_rate: 0.05,
            support_noise: 0.1,
            readout: ReadoutKind::Hybrid,
            backend: BackendKind::Parallel,
        }
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Evaluation of the network's primary head (SGD head for hybrid runs).
    pub primary: EvalReport,
    /// Evaluation of the pure-BCPNN associative head, when present.
    pub bcpnn: Option<EvalReport>,
    /// Wall-clock training time in seconds (unsupervised + supervised).
    pub train_time_s: f64,
}

/// The training schedule for a run configuration (shuffling seed derived
/// from the run seed via [`TRAIN_SEED_MASK`]).
fn training_params(config: &BcpnnRunConfig, seed: u64) -> TrainingParams {
    TrainingParams {
        unsupervised_epochs: config.unsupervised_epochs,
        supervised_epochs: config.supervised_epochs,
        batch_size: config.batch_size,
        seed: seed ^ TRAIN_SEED_MASK,
        shuffle: true,
    }
}

/// The [`NetworkEstimator`] (topology + training schedule) for a run
/// configuration: the single spelling every binary and the hyperopt search
/// train through.
pub fn build_estimator(config: &BcpnnRunConfig, input_width: usize, seed: u64) -> NetworkEstimator {
    let hidden = HiddenLayerParams {
        n_inputs: input_width,
        n_hcu: config.n_hcu,
        n_mcu: config.n_mcu,
        receptive_field: config.receptive_field,
        trace_rate: config.trace_rate,
        support_noise: config.support_noise,
        ..Default::default()
    };
    NetworkEstimator::new(
        Network::builder()
            .hidden_params(hidden)
            .classes(2)
            .readout(config.readout)
            .backend(config.backend)
            .seed(seed),
        training_params(config, seed),
    )
}

/// Build the (untrained) network for a run configuration (exposed so the
/// Fig. 2 and Fig. 5 binaries can attach observers before training).
pub fn build_network(config: &BcpnnRunConfig, input_width: usize, seed: u64) -> Network {
    build_estimator(config, input_width, seed)
        .builder
        .build()
        .expect("invalid run configuration")
}

/// The trainer matching a run configuration.
pub fn build_trainer(config: &BcpnnRunConfig, seed: u64) -> Trainer {
    Trainer::new(training_params(config, seed))
}

/// Train one network with the given configuration and seed, and evaluate it
/// on the test set.
pub fn run_bcpnn(config: &BcpnnRunConfig, data: &HiggsExperimentData, seed: u64) -> RunOutcome {
    let estimator = build_estimator(config, data.encoded_width(), seed);
    let (network, report) = estimator
        .fit_report(&data.x_train, &data.y_train)
        .expect("training failed");
    let primary = network
        .evaluate(&data.x_test, &data.y_test)
        .expect("evaluation failed");
    let bcpnn = match config.readout {
        ReadoutKind::Bcpnn | ReadoutKind::Hybrid => Some(
            network
                .evaluate_with(ReadoutKind::Bcpnn, &data.x_test, &data.y_test)
                .expect("evaluation failed"),
        ),
        ReadoutKind::Sgd => None,
    };
    RunOutcome {
        primary,
        bcpnn,
        train_time_s: report.train_time_seconds(),
    }
}

/// Aggregate statistics over repeated runs (the paper averages 10
/// repetitions per configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Mean test accuracy of the primary head.
    pub mean_accuracy: f64,
    /// Sample standard deviation of the accuracy.
    pub std_accuracy: f64,
    /// Mean AUC of the primary head.
    pub mean_auc: f64,
    /// Mean training time in seconds.
    pub mean_time_s: f64,
    /// Sample standard deviation of the training time.
    pub std_time_s: f64,
    /// Number of repetitions aggregated.
    pub repetitions: usize,
}

/// Aggregate a set of run outcomes.
pub fn aggregate(outcomes: &[RunOutcome]) -> Aggregate {
    let acc: Vec<f64> = outcomes.iter().map(|o| o.primary.accuracy).collect();
    let auc: Vec<f64> = outcomes.iter().map(|o| o.primary.auc).collect();
    let time: Vec<f64> = outcomes.iter().map(|o| o.train_time_s).collect();
    Aggregate {
        mean_accuracy: bcpnn_tensor::stats::mean(&acc),
        std_accuracy: bcpnn_tensor::stats::std_dev(&acc),
        mean_auc: bcpnn_tensor::stats::mean(&auc),
        mean_time_s: bcpnn_tensor::stats::mean(&time),
        std_time_s: bcpnn_tensor::stats::std_dev(&time),
        repetitions: outcomes.len(),
    }
}

/// Run a configuration `repetitions` times with seeds `base_seed + r` and
/// aggregate, returning both the raw outcomes and the aggregate.
pub fn run_repeated(
    config: &BcpnnRunConfig,
    data: &HiggsExperimentData,
    repetitions: usize,
    base_seed: u64,
) -> (Vec<RunOutcome>, Aggregate) {
    let outcomes: Vec<RunOutcome> = (0..repetitions)
        .map(|r| run_bcpnn(config, data, base_seed + r as u64))
        .collect();
    let agg = aggregate(&outcomes);
    (outcomes, agg)
}

/// Directory experiment CSVs are written to (`results/` or
/// `$BCPNN_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var("BCPNN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Write CSV rows (with a header) into `results_dir()/name`, returning the
/// path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut text = String::with_capacity(rows.len() * 64 + header.len() + 1);
    text.push_str(header);
    text.push('\n');
    for row in rows {
        text.push_str(row);
        text.push('\n');
    }
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_data() -> HiggsExperimentData {
        prepare_higgs(&HiggsDataConfig {
            train_per_class: 300,
            test_per_class: 150,
            ..Default::default()
        })
    }

    #[test]
    fn prepared_data_is_balanced_and_encoded() {
        let data = tiny_data();
        assert_eq!(data.encoded_width(), 280);
        assert_eq!(data.x_train.rows(), 600);
        assert_eq!(data.x_test.rows(), 300);
        let pos = data.y_train.iter().filter(|&&l| l == 1).count();
        assert_eq!(pos, 300, "training subset must be balanced");
        // Binary encoding with one hot bit per feature block.
        assert!(data
            .x_train
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || v == 1.0));
        let row_sum: f32 = data.x_train.row(0).iter().sum();
        assert_eq!(row_sum, 28.0);
    }

    #[test]
    fn small_run_beats_chance_and_reports_time() {
        let data = tiny_data();
        let cfg = BcpnnRunConfig {
            n_mcu: 30,
            unsupervised_epochs: 2,
            supervised_epochs: 3,
            ..Default::default()
        };
        let outcome = run_bcpnn(&cfg, &data, 1);
        assert!(outcome.train_time_s > 0.0);
        assert!(
            outcome.primary.accuracy > 0.52,
            "accuracy {}",
            outcome.primary.accuracy
        );
        assert!(outcome.bcpnn.is_some());
    }

    #[test]
    fn aggregation_matches_hand_computation() {
        let mk = |acc: f64, time: f64| RunOutcome {
            primary: EvalReport {
                accuracy: acc,
                auc: acc + 0.05,
                log_loss: 0.6,
                precision: acc,
                recall: acc,
                f1: acc,
            },
            bcpnn: None,
            train_time_s: time,
        };
        let agg = aggregate(&[mk(0.6, 10.0), mk(0.7, 14.0)]);
        assert!((agg.mean_accuracy - 0.65).abs() < 1e-12);
        assert!((agg.mean_time_s - 12.0).abs() < 1e-12);
        assert!((agg.mean_auc - 0.70).abs() < 1e-12);
        assert_eq!(agg.repetitions, 2);
        assert!(agg.std_accuracy > 0.0);
    }

    #[test]
    fn write_csv_places_files_under_results_dir() {
        let dir = std::env::temp_dir().join(format!("bcpnn_results_{}", std::process::id()));
        std::env::set_var("BCPNN_RESULTS_DIR", &dir);
        let path = write_csv(
            "unit_test.csv",
            "a,b",
            &["1,2".to_string(), "3,4".to_string()],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("BCPNN_RESULTS_DIR");
    }
}
