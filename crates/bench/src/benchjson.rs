//! Machine-readable benchmark reports and baseline comparison.
//!
//! The vendored criterion shim appends one JSON line per benchmark to the
//! file named by `BENCH_JSON` (see `shims/criterion`). This module turns
//! that JSONL stream into a canonical report
//! (`{"schema":"bcpnn-bench/v1","benches":{...}}`), diffs it against a
//! committed baseline with a percentage threshold, renders the diff as a
//! GitHub-flavoured markdown table, and checks *relative* speed claims
//! ("vectorized must beat naive") that hold on any machine even though
//! absolute nanoseconds do not.
//!
//! The `bench_compare` binary is the CLI over these functions; the CI
//! `bench-regression` job is its only non-human caller. Parsing reuses
//! [`bcpnn_gateway::json`] — the same RFC 8259 implementation the serving
//! stack trusts on its wire.
//!
//! Besides per-bench records, a report may carry *metadata* about the run —
//! the detected CPU feature set and active SIMD dispatch tier, emitted by
//! the bench binary as a `{"meta":{...}}` JSONL line. Metadata rides along
//! into the canonical report and the markdown summary so a baseline states
//! which machine class produced it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bcpnn_gateway::json::{self, Json, Number};

/// Schema tag of the canonical report format.
pub const SCHEMA: &str = "bcpnn-bench/v1";

/// Run-level metadata attached to a report (string key/value pairs, e.g.
/// `cpu_features` and `simd_tier`).
pub type BenchMeta = BTreeMap<String, String>;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full benchmark name (`group/function` as printed by the harness).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Derived throughput, when the bench declared `Throughput::Elements`
    /// (rows/sec for the serving benches).
    pub elems_per_sec: Option<f64>,
}

/// Outcome of one benchmark's baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareStatus {
    /// Within the threshold (or faster).
    Ok,
    /// Slower than baseline by more than the threshold.
    Regression,
    /// Present now, absent from the baseline (informational).
    New,
    /// In the baseline but not measured now — a silently dropped bench is
    /// treated as a failure, otherwise deleting a bench "fixes" CI.
    Missing,
}

/// One row of a baseline comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline ns/iter, when the baseline has this bench.
    pub baseline_ns: Option<f64>,
    /// Current ns/iter, when this run measured the bench.
    pub current_ns: Option<f64>,
    /// Signed percent change vs baseline (positive = slower).
    pub delta_pct: Option<f64>,
    /// Classification under the threshold.
    pub status: CompareStatus,
}

/// A full baseline comparison.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-bench rows, sorted by name.
    pub rows: Vec<CompareRow>,
    /// The threshold the rows were classified under (percent).
    pub threshold_pct: f64,
}

impl CompareReport {
    /// Names of benches classified as failures (regressed or missing).
    pub fn failures(&self) -> Vec<&CompareRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.status, CompareStatus::Regression | CompareStatus::Missing))
            .collect()
    }
}

/// Parse a report in either accepted syntax — the shim's JSONL stream or a
/// canonical `bcpnn-bench/v1` object — into name-sorted records. Duplicate
/// names keep the *last* occurrence (a re-run bench supersedes its earlier
/// sample). Convenience wrapper over [`parse_report_full`] that drops the
/// metadata.
pub fn parse_report(text: &str) -> Result<Vec<BenchRecord>, String> {
    parse_report_full(text).map(|(records, _)| records)
}

/// [`parse_report`] plus the run metadata. In the JSONL syntax a metadata
/// line is `{"meta":{"key":"value",...}}` (no `"name"` field); several such
/// lines merge, later keys overriding earlier ones. In the canonical syntax
/// metadata lives under a top-level `"meta"` object.
pub fn parse_report_full(text: &str) -> Result<(Vec<BenchRecord>, BenchMeta), String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err("empty benchmark report".into());
    }
    let mut by_name: BTreeMap<String, BenchRecord> = BTreeMap::new();
    let mut meta = BenchMeta::new();
    let canonical = json::parse(trimmed)
        .ok()
        .filter(|v| v.get("schema").is_some());
    if let Some(doc) = canonical {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or_default();
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?}, expected {SCHEMA:?}"
            ));
        }
        merge_meta(&mut meta, &doc)?;
        let benches = match doc.get("benches") {
            Some(Json::Obj(members)) => members,
            _ => return Err("canonical report has no \"benches\" object".into()),
        };
        for (name, value) in benches {
            by_name.insert(name.clone(), record_from_obj(name, value)?);
        }
    } else {
        for (i, line) in trimmed.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value =
                json::parse(line).map_err(|e| format!("line {}: not a JSON record: {e}", i + 1))?;
            if value.get("name").is_none() && value.get("meta").is_some() {
                merge_meta(&mut meta, &value).map_err(|e| format!("line {}: {e}", i + 1))?;
                continue;
            }
            let name = value
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: record has no \"name\"", i + 1))?
                .to_string();
            let record = record_from_obj(&name, &value)?;
            by_name.insert(name, record);
        }
    }
    Ok((by_name.into_values().collect(), meta))
}

/// Fold the `"meta"` object of `doc` (if any) into `meta`; non-string
/// values are an error so a typo'd metadata line fails loudly.
fn merge_meta(meta: &mut BenchMeta, doc: &Json) -> Result<(), String> {
    let Some(obj) = doc.get("meta") else {
        return Ok(());
    };
    let members = match obj {
        Json::Obj(members) => members,
        _ => return Err("\"meta\" is not an object".into()),
    };
    for (key, value) in members {
        let s = value
            .as_str()
            .ok_or_else(|| format!("meta key {key:?} has a non-string value"))?;
        meta.insert(key.clone(), s.to_string());
    }
    Ok(())
}

fn record_from_obj(name: &str, value: &Json) -> Result<BenchRecord, String> {
    let ns = value
        .get("ns_per_iter")
        .and_then(as_f64)
        .ok_or_else(|| format!("bench {name:?}: missing numeric \"ns_per_iter\""))?;
    if !(ns.is_finite() && ns > 0.0) {
        return Err(format!("bench {name:?}: ns_per_iter {ns} is not positive"));
    }
    Ok(BenchRecord {
        name: name.to_string(),
        ns_per_iter: ns,
        elems_per_sec: value.get("elems_per_sec").and_then(as_f64),
    })
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => n.as_f64(),
        _ => None,
    }
}

/// Render records as the canonical, committed report format: schema-tagged,
/// name-sorted, one bench per line — diffs of the baseline file stay
/// readable in review.
pub fn canonical_report(records: &[BenchRecord]) -> String {
    canonical_report_with_meta(records, &BenchMeta::new())
}

/// [`canonical_report`] with run metadata included as a top-level `"meta"`
/// object (omitted when empty).
pub fn canonical_report_with_meta(records: &[BenchRecord], meta: &BenchMeta) -> String {
    let mut sorted: Vec<&BenchRecord> = records.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    if !meta.is_empty() {
        let obj: Vec<(String, Json)> = meta
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v)))
            .collect();
        let _ = writeln!(out, "  \"meta\": {},", Json::Obj(obj).render());
    }
    out.push_str("  \"benches\": {\n");
    for (i, r) in sorted.iter().enumerate() {
        let mut obj = vec![(
            "ns_per_iter".to_string(),
            Json::Num(Number::from_f64(r.ns_per_iter).expect("finite")),
        )];
        if let Some(eps) = r.elems_per_sec.and_then(Number::from_f64) {
            obj.push(("elems_per_sec".to_string(), Json::Num(eps)));
        }
        let comma = if i + 1 < sorted.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {}: {}{comma}",
            Json::str(&r.name).render(),
            Json::Obj(obj).render()
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Diff `current` against `baseline`: a bench is a regression when its
/// ns/iter exceeds the baseline by more than `threshold_pct` percent, and a
/// failure when it vanished from the run entirely.
pub fn compare(
    current: &[BenchRecord],
    baseline: &[BenchRecord],
    threshold_pct: f64,
) -> CompareReport {
    let cur: BTreeMap<&str, &BenchRecord> = current.iter().map(|r| (r.name.as_str(), r)).collect();
    let base: BTreeMap<&str, &BenchRecord> =
        baseline.iter().map(|r| (r.name.as_str(), r)).collect();
    let mut names: Vec<&str> = cur.keys().chain(base.keys()).copied().collect();
    names.sort_unstable();
    names.dedup();
    let rows = names
        .into_iter()
        .map(|name| {
            let c = cur.get(name).map(|r| r.ns_per_iter);
            let b = base.get(name).map(|r| r.ns_per_iter);
            let (delta_pct, status) = match (b, c) {
                (Some(b), Some(c)) => {
                    let delta = (c - b) / b * 100.0;
                    let status = if delta > threshold_pct {
                        CompareStatus::Regression
                    } else {
                        CompareStatus::Ok
                    };
                    (Some(delta), status)
                }
                (None, Some(_)) => (None, CompareStatus::New),
                (Some(_), None) => (None, CompareStatus::Missing),
                (None, None) => unreachable!("name came from one of the maps"),
            };
            CompareRow {
                name: name.to_string(),
                baseline_ns: b,
                current_ns: c,
                delta_pct,
                status,
            }
        })
        .collect();
    CompareReport {
        rows,
        threshold_pct,
    }
}

/// Render a comparison as a GitHub-flavoured markdown table (the CI job
/// appends this to `$GITHUB_STEP_SUMMARY`).
pub fn markdown_table(report: &CompareReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Benchmark comparison (threshold {:.0}%)\n",
        report.threshold_pct
    );
    out.push_str("| benchmark | baseline ns/iter | current ns/iter | delta | status |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for row in &report.rows {
        let fmt_ns = |v: Option<f64>| v.map_or("—".to_string(), |ns| format!("{ns:.1}"));
        let delta = row
            .delta_pct
            .map_or("—".to_string(), |d| format!("{d:+.1}%"));
        let status = match row.status {
            CompareStatus::Ok => "ok",
            CompareStatus::Regression => "**regression**",
            CompareStatus::New => "new",
            CompareStatus::Missing => "**missing**",
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {delta} | {status} |",
            row.name,
            fmt_ns(row.baseline_ns),
            fmt_ns(row.current_ns)
        );
    }
    out
}

/// Check a machine-independent relative claim of the form `"fast<slow"`:
/// bench `fast` must take strictly fewer ns/iter than bench `slow`. Returns
/// the speedup factor (`slow/fast`, > 1.0) on success.
pub fn assert_faster(records: &[BenchRecord], claim: &str) -> Result<f64, String> {
    let (fast, slow) = claim
        .split_once('<')
        .ok_or_else(|| format!("claim {claim:?} is not of the form \"fast<slow\""))?;
    let lookup = |name: &str| -> Result<f64, String> {
        records
            .iter()
            .find(|r| r.name == name.trim())
            .map(|r| r.ns_per_iter)
            .ok_or_else(|| format!("claim {claim:?}: bench {:?} not in report", name.trim()))
    };
    let fast_ns = lookup(fast)?;
    let slow_ns = lookup(slow)?;
    if fast_ns < slow_ns {
        Ok(slow_ns / fast_ns)
    } else {
        Err(format!(
            "claim {claim:?} failed: {} = {fast_ns:.1} ns/iter is not faster than {} = {slow_ns:.1} ns/iter",
            fast.trim(),
            slow.trim()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            ns_per_iter: ns,
            elems_per_sec: None,
        }
    }

    #[test]
    fn parses_shim_jsonl() {
        let text = "\
{\"name\":\"g/naive\",\"ns_per_iter\":200.000,\"elems_per_sec\":1250000.000}\n\
{\"name\":\"g/vectorized\",\"ns_per_iter\":100.000}\n\
{\"name\":\"g/naive\",\"ns_per_iter\":190.000}\n";
        let records = parse_report(text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "g/naive");
        assert_eq!(records[0].ns_per_iter, 190.0, "last duplicate wins");
        assert_eq!(records[0].elems_per_sec, None);
        assert_eq!(records[1].name, "g/vectorized");
    }

    #[test]
    fn canonical_report_roundtrips() {
        let records = vec![
            BenchRecord {
                name: "b/two".into(),
                ns_per_iter: 1234.5,
                elems_per_sec: Some(2.5e6),
            },
            rec("a/one", 10.0),
        ];
        let text = canonical_report(&records);
        assert!(text.contains("\"schema\": \"bcpnn-bench/v1\""));
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a/one", "canonical order is sorted");
        assert_eq!(parsed[1].ns_per_iter, 1234.5);
        assert_eq!(parsed[1].elems_per_sec, Some(2.5e6));
    }

    #[test]
    fn meta_lines_parse_and_roundtrip() {
        let text = "\
{\"meta\":{\"cpu_features\":\"avx2 fma\",\"simd_tier\":\"avx2\"}}\n\
{\"name\":\"g/naive\",\"ns_per_iter\":200.000}\n\
{\"meta\":{\"simd_tier\":\"lanes\"}}\n";
        let (records, meta) = parse_report_full(text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(meta["cpu_features"], "avx2 fma");
        assert_eq!(meta["simd_tier"], "lanes", "later meta lines override");

        let canonical = canonical_report_with_meta(&records, &meta);
        assert!(canonical.contains("\"meta\""));
        let (reparsed, remeta) = parse_report_full(&canonical).unwrap();
        assert_eq!(reparsed, records);
        assert_eq!(remeta, meta);

        // Meta is optional: a meta-free canonical report yields empty meta.
        let (_, empty) = parse_report_full(&canonical_report(&records)).unwrap();
        assert!(empty.is_empty());
        // Non-string meta values fail loudly.
        assert!(
            parse_report_full("{\"meta\":{\"k\":1}}\n{\"name\":\"g\",\"ns_per_iter\":1}").is_err()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_report("").is_err());
        assert!(parse_report("not json").is_err());
        assert!(parse_report("{\"name\":\"x\"}").is_err(), "no ns_per_iter");
        assert!(parse_report("{\"name\":\"x\",\"ns_per_iter\":-4}").is_err());
        assert!(
            parse_report("{\"schema\":\"bcpnn-bench/v9\",\"benches\":{}}").is_err(),
            "unknown schema version"
        );
    }

    #[test]
    fn compare_classifies_every_status() {
        let baseline = vec![
            rec("stable", 100.0),
            rec("regressed", 100.0),
            rec("gone", 5.0),
        ];
        let current = vec![
            rec("stable", 110.0),
            rec("regressed", 161.0),
            rec("fresh", 7.0),
        ];
        let report = compare(&current, &baseline, 50.0);
        let status: BTreeMap<&str, CompareStatus> = report
            .rows
            .iter()
            .map(|r| (r.name.as_str(), r.status))
            .collect();
        assert_eq!(status["stable"], CompareStatus::Ok);
        assert_eq!(status["regressed"], CompareStatus::Regression);
        assert_eq!(status["gone"], CompareStatus::Missing);
        assert_eq!(status["fresh"], CompareStatus::New);
        assert_eq!(report.failures().len(), 2);
        let table = markdown_table(&report);
        assert!(table.contains("| regressed | 100.0 | 161.0 | +61.0% | **regression** |"));
        assert!(table.contains("| gone | 5.0 | — | — | **missing** |"));
    }

    #[test]
    fn assert_faster_checks_relative_order() {
        let records = vec![rec("g/vectorized", 50.0), rec("g/naive", 150.0)];
        let speedup = assert_faster(&records, "g/vectorized<g/naive").unwrap();
        assert!((speedup - 3.0).abs() < 1e-12);
        assert!(assert_faster(&records, "g/naive<g/vectorized").is_err());
        assert!(assert_faster(&records, "g/vectorized<g/absent").is_err());
        assert!(assert_faster(&records, "no-separator").is_err());
    }
}
