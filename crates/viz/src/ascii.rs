//! ASCII rendering of receptive fields and masks, for terminal output in
//! the examples (the paper's Fig. 1 / Fig. 5 rendered as characters).

use bcpnn_tensor::Matrix;

/// Character ramp used to render intensities from low to high.
const RAMP: [char; 5] = [' ', '.', ':', 'o', '#'];

/// Render a scalar field as ASCII art, one character per element, rows
/// separated by newlines. Values are rescaled from the field's own range.
pub fn render_field(field: &Matrix<f32>) -> String {
    if field.rows() == 0 || field.cols() == 0 {
        return String::new();
    }
    let lo = field
        .as_slice()
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min);
    let hi = field
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let span = (hi - lo).max(1e-12);
    let mut out = String::with_capacity((field.cols() + 1) * field.rows());
    for r in 0..field.rows() {
        for &v in field.row(r) {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            let idx = (t * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx]);
        }
        out.push('\n');
    }
    out
}

/// Render a binary mask with `#` for active connections and `.` for silent
/// ones (more legible than the generic ramp for Fig. 5-style output).
pub fn render_mask(mask: &Matrix<f32>) -> String {
    let mut out = String::with_capacity((mask.cols() + 1) * mask.rows());
    for r in 0..mask.rows() {
        for &v in mask.row(r) {
            out.push(if v >= 0.5 { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Reshape one HCU's flat mask row over the 28-feature × `n_bins` input
/// layout of the encoded Higgs data and render it, one text row per
/// original feature, prefixed with the feature name. This is the terminal
/// version of inspecting "where the HCU looks" per physics quantity.
pub fn render_feature_mask(mask_row: &[f32], feature_names: &[String], n_bins: usize) -> String {
    assert!(n_bins > 0, "n_bins must be positive");
    assert_eq!(
        mask_row.len(),
        feature_names.len() * n_bins,
        "mask width {} does not match {} features x {} bins",
        mask_row.len(),
        feature_names.len(),
        n_bins
    );
    let width = feature_names.iter().map(|n| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (f, name) in feature_names.iter().enumerate() {
        out.push_str(&format!("{name:width$} |"));
        for b in 0..n_bins {
            out.push(if mask_row[f * n_bins + b] >= 0.5 {
                '#'
            } else {
                '.'
            });
        }
        let active = (0..n_bins)
            .filter(|&b| mask_row[f * n_bins + b] >= 0.5)
            .count();
        out.push_str(&format!("| {active}/{n_bins}\n"));
    }
    out
}

/// A compact one-line histogram (sparkline) of non-negative counts.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            BARS[(t * (BARS.len() - 1) as f64).round() as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_field_has_one_line_per_row() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let s = render_field(&m);
        assert_eq!(s.lines().count(), 3);
        assert!(s.lines().all(|l| l.chars().count() == 5));
        // Lowest value renders as the lightest glyph, highest as the darkest.
        assert!(s.starts_with(' '));
        assert!(s.trim_end().ends_with('#'));
    }

    #[test]
    fn render_field_handles_empty_and_constant_inputs() {
        assert_eq!(render_field(&Matrix::zeros(0, 3)), "");
        let c = render_field(&Matrix::filled(2, 2, 1.0f32));
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn render_mask_uses_hash_and_dot() {
        let m = Matrix::from_vec(1, 4, vec![1.0f32, 0.0, 1.0, 0.0]);
        assert_eq!(render_mask(&m), "#.#.\n");
    }

    #[test]
    fn feature_mask_rendering_groups_by_feature() {
        let names = vec!["lepton_pt".to_string(), "m_bb".to_string()];
        let mask = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let s = render_feature_mask(&mask, &names, 3);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("lepton_pt"));
        assert!(lines[0].contains("|#..|"));
        assert!(lines[0].trim_end().ends_with("1/3"));
        assert!(lines[1].contains("|###|"));
        assert!(lines[1].trim_end().ends_with("3/3"));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn feature_mask_rejects_wrong_width() {
        let names = vec!["a".to_string()];
        let _ = render_feature_mask(&[1.0, 0.0, 1.0], &names, 2);
    }

    #[test]
    fn sparkline_spans_the_ramp() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
