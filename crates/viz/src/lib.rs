//! # bcpnn-viz
//!
//! In-situ visualization substrate, standing in for StreamBrain's ParaView
//! Catalyst integration (§III-B of the paper).
//!
//! * [`vti`] — VTK ImageData (`.vti`) writer; the files load in ParaView.
//! * [`pgm`] — portable graymap export/import for quick inspection.
//! * [`ascii`] — terminal rendering of receptive fields and masks.
//! * [`insitu`] — [`InSituObserver`], a [`bcpnn_core::TrainingObserver`]
//!   that snapshots the receptive-field masks at the end of every
//!   unsupervised epoch (Fig. 2), plus [`MaskHistory`] for in-memory
//!   recording.

#![warn(missing_docs)]

pub mod ascii;
pub mod insitu;
pub mod pgm;
pub mod vti;

pub use insitu::{InSituObserver, MaskHistory};
pub use pgm::{read_pgm, save_pgm, write_pgm, PgmError};
pub use vti::{save_vti, write_vti, VtiError};
