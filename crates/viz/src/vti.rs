//! VTK ImageData (`.vti`) XML writer.
//!
//! StreamBrain exports the HCU receptive fields through a ParaView Catalyst
//! adaptor that writes VTI files once per epoch (§III-B, Fig. 2). ParaView
//! is not available here, but the file format is simple XML, so this module
//! writes the same artifact: a 2-D ImageData whose single cell array holds
//! the mask (or any scalar field). The produced files load directly in
//! ParaView / VisIt.

use std::io::Write;
use std::path::Path;

use bcpnn_tensor::Matrix;

/// Errors produced while writing VTI files.
#[derive(Debug)]
pub enum VtiError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The field has a shape that cannot be written (e.g. empty).
    BadShape(String),
}

impl std::fmt::Display for VtiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtiError::Io(e) => write!(f, "I/O error: {e}"),
            VtiError::BadShape(msg) => write!(f, "bad field shape: {msg}"),
        }
    }
}

impl std::error::Error for VtiError {}

impl From<std::io::Error> for VtiError {
    fn from(e: std::io::Error) -> Self {
        VtiError::Io(e)
    }
}

/// Serialize a 2-D scalar field as VTK ImageData XML (ASCII encoding).
///
/// The matrix is interpreted as a `rows x cols` image with one scalar value
/// per point; `name` is the name of the point-data array.
pub fn write_vti<W: Write>(field: &Matrix<f32>, name: &str, mut w: W) -> Result<(), VtiError> {
    if field.rows() == 0 || field.cols() == 0 {
        return Err(VtiError::BadShape(format!(
            "field must be non-empty, got {:?}",
            field.shape()
        )));
    }
    let nx = field.cols();
    let ny = field.rows();
    writeln!(w, r#"<?xml version="1.0"?>"#)?;
    writeln!(
        w,
        r#"<VTKFile type="ImageData" version="0.1" byte_order="LittleEndian">"#
    )?;
    writeln!(
        w,
        r#"  <ImageData WholeExtent="0 {} 0 {} 0 0" Origin="0 0 0" Spacing="1 1 1">"#,
        nx - 1,
        ny - 1
    )?;
    writeln!(w, r#"    <Piece Extent="0 {} 0 {} 0 0">"#, nx - 1, ny - 1)?;
    writeln!(w, r#"      <PointData Scalars="{name}">"#)?;
    writeln!(
        w,
        r#"        <DataArray type="Float32" Name="{name}" format="ascii">"#
    )?;
    for r in 0..ny {
        write!(w, "          ")?;
        for (c, v) in field.row(r).iter().enumerate() {
            if c > 0 {
                write!(w, " ")?;
            }
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    writeln!(w, r#"        </DataArray>"#)?;
    writeln!(w, r#"      </PointData>"#)?;
    writeln!(w, r#"      <CellData></CellData>"#)?;
    writeln!(w, r#"    </Piece>"#)?;
    writeln!(w, r#"  </ImageData>"#)?;
    writeln!(w, r#"</VTKFile>"#)?;
    Ok(())
}

/// Write the field to a `.vti` file on disk (creating parent directories).
pub fn save_vti<P: AsRef<Path>>(field: &Matrix<f32>, name: &str, path: P) -> Result<(), VtiError> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let f = std::fs::File::create(path)?;
    write_vti(field, name, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_wellformed_vti_xml() {
        let field = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let mut buf = Vec::new();
        write_vti(&field, "receptive_field", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(r#"<?xml version="1.0"?>"#));
        assert!(text.contains(r#"<VTKFile type="ImageData""#));
        assert!(text.contains(r#"WholeExtent="0 3 0 2 0 0""#));
        assert!(text.contains(r#"Name="receptive_field""#));
        assert!(text.contains("</VTKFile>"));
        // All 12 values appear in the payload.
        for v in 0..12 {
            assert!(text.contains(&format!("{v}")));
        }
        // Balanced open/close tags for the ones we emit once.
        for tag in ["ImageData", "Piece", "PointData", "DataArray"] {
            assert_eq!(
                text.matches(&format!("<{tag}")).count(),
                text.matches(&format!("</{tag}>")).count(),
                "unbalanced tag {tag}"
            );
        }
    }

    #[test]
    fn empty_fields_are_rejected() {
        let field = Matrix::zeros(0, 4);
        let err = write_vti(&field, "x", Vec::new()).unwrap_err();
        assert!(matches!(err, VtiError::BadShape(_)));
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join(format!("bcpnn_vti_{}", std::process::id()));
        let path = dir.join("epoch_000").join("mask.vti");
        let field = Matrix::filled(2, 2, 1.0f32);
        save_vti(&field, "mask", &path).unwrap();
        assert!(path.exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("VTKFile"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
