//! In-situ training observation: the Rust counterpart of StreamBrain's
//! ParaView Catalyst adaptor (§III-B).
//!
//! [`InSituObserver`] implements [`bcpnn_core::TrainingObserver`]: at the
//! end of every epoch it snapshots the receptive-field masks and writes
//! them as `.vti` (ParaView-loadable) and `.pgm` (directly viewable) files
//! into a run directory, together with a `timeline.csv` of per-epoch
//! statistics. [`MaskHistory`] is the in-memory variant used by tests and
//! by the Fig. 2 harness to assert on the evolution without touching disk.

use std::path::{Path, PathBuf};

use bcpnn_core::{EpochStats, Network, TrainingObserver, TrainingPhase};
use bcpnn_tensor::Matrix;
use parking_lot::Mutex;

use crate::pgm::save_pgm;
use crate::vti::save_vti;

/// File-writing in-situ observer (the Catalyst-adaptor stand-in).
#[derive(Debug)]
pub struct InSituObserver {
    output_dir: PathBuf,
    /// Also mirror each epoch's masks as PGM images.
    write_pgm: bool,
    timeline: Vec<String>,
    errors: Vec<String>,
}

impl InSituObserver {
    /// Create an observer writing into `output_dir` (created on first use).
    pub fn new<P: AsRef<Path>>(output_dir: P) -> Self {
        Self {
            output_dir: output_dir.as_ref().to_path_buf(),
            write_pgm: true,
            timeline: vec!["phase,epoch,duration_s,plasticity_swaps,sgd_loss".to_string()],
            errors: Vec::new(),
        }
    }

    /// Disable the PGM mirror (VTI only).
    pub fn vti_only(mut self) -> Self {
        self.write_pgm = false;
        self
    }

    /// Directory the observer writes into.
    pub fn output_dir(&self) -> &Path {
        &self.output_dir
    }

    /// I/O errors accumulated during observation (training is never aborted
    /// because visualization failed — same policy as in-situ co-processing
    /// in HPC codes).
    pub fn errors(&self) -> &[String] {
        &self.errors
    }

    /// Write the accumulated per-epoch timeline CSV. Call after training.
    pub fn write_timeline(&self) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.output_dir)?;
        let path = self.output_dir.join("timeline.csv");
        std::fs::write(&path, self.timeline.join("\n") + "\n")?;
        Ok(path)
    }

    fn epoch_dir(&self, stats: &EpochStats) -> PathBuf {
        let phase = match stats.phase {
            TrainingPhase::Unsupervised => "unsup",
            TrainingPhase::Supervised => "sup",
        };
        self.output_dir
            .join(format!("{phase}_epoch_{:03}", stats.epoch))
    }
}

impl TrainingObserver for InSituObserver {
    fn on_epoch_end(&mut self, network: &Network, stats: &EpochStats) {
        self.timeline.push(format!(
            "{},{},{:.6},{},{}",
            stats.phase,
            stats.epoch,
            stats.duration.as_secs_f64(),
            stats
                .plasticity_swaps
                .map(|s| s.to_string())
                .unwrap_or_default(),
            stats
                .sgd_loss
                .map(|l| format!("{l:.6}"))
                .unwrap_or_default(),
        ));
        // Masks only change during unsupervised epochs.
        if stats.phase != TrainingPhase::Unsupervised {
            return;
        }
        let mask = network.hidden().receptive_field_snapshot();
        let dir = self.epoch_dir(stats);
        if let Err(e) = save_vti(&mask, "receptive_field", dir.join("mask.vti")) {
            self.errors.push(format!("epoch {}: {e}", stats.epoch));
        }
        if self.write_pgm {
            if let Err(e) = save_pgm(&mask, dir.join("mask.pgm")) {
                self.errors.push(format!("epoch {}: {e}", stats.epoch));
            }
        }
    }
}

/// In-memory mask recorder: keeps one mask snapshot per unsupervised epoch.
/// Thread-safe so it can be shared with analysis code while training runs.
#[derive(Debug, Default)]
pub struct MaskHistory {
    snapshots: Mutex<Vec<(usize, Matrix<f32>)>>,
}

impl MaskHistory {
    /// Create an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded `(epoch, mask)` snapshots, in order.
    pub fn snapshots(&self) -> Vec<(usize, Matrix<f32>)> {
        self.snapshots.lock().clone()
    }

    /// Fraction of mask entries that changed between the first and last
    /// snapshot (a scalar measure of how much structural plasticity moved
    /// the receptive fields, used by the Fig. 2 harness).
    pub fn total_change_fraction(&self) -> f64 {
        let snaps = self.snapshots.lock();
        if snaps.len() < 2 {
            return 0.0;
        }
        let first = &snaps.first().expect("non-empty").1;
        let last = &snaps.last().expect("non-empty").1;
        let changed = first
            .as_slice()
            .iter()
            .zip(last.as_slice())
            .filter(|(a, b)| (*a - *b).abs() > 0.5)
            .count();
        changed as f64 / first.len() as f64
    }
}

impl TrainingObserver for &MaskHistory {
    fn on_epoch_end(&mut self, network: &Network, stats: &EpochStats) {
        if stats.phase == TrainingPhase::Unsupervised {
            self.snapshots
                .lock()
                .push((stats.epoch, network.hidden().receptive_field_snapshot()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcpnn_backend::BackendKind;
    use bcpnn_core::{Network, ReadoutKind, Trainer, TrainingParams};
    use bcpnn_tensor::MatrixRng;

    fn toy_data(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Vec<usize>) {
        let mut rng = MatrixRng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_fn(n, d, |r, c| {
            let hot = if labels[r] == 0 {
                c < d / 2
            } else {
                c >= d / 2
            };
            f32::from(rng.uniform_scalar::<f64>(0.0, 1.0) < if hot { 0.5 } else { 0.1 })
        });
        (x, labels)
    }

    #[test]
    fn observer_writes_one_snapshot_per_unsupervised_epoch() {
        let (x, y) = toy_data(128, 20, 1);
        let mut net = Network::builder()
            .input(20)
            .hidden(2, 3, 0.5)
            .classes(2)
            .readout(ReadoutKind::Sgd)
            .backend(BackendKind::Naive)
            .seed(2)
            .build()
            .unwrap();
        let dir = std::env::temp_dir().join(format!("bcpnn_insitu_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut obs = InSituObserver::new(&dir);
        Trainer::new(TrainingParams {
            unsupervised_epochs: 3,
            supervised_epochs: 2,
            batch_size: 32,
            seed: 3,
            shuffle: true,
        })
        .fit_with_observers(&mut net, &x, &y, &mut [&mut obs])
        .unwrap();
        assert!(obs.errors().is_empty(), "viz errors: {:?}", obs.errors());
        for epoch in 0..3 {
            assert!(dir
                .join(format!("unsup_epoch_{epoch:03}/mask.vti"))
                .exists());
            assert!(dir
                .join(format!("unsup_epoch_{epoch:03}/mask.pgm"))
                .exists());
        }
        assert!(
            !dir.join("sup_epoch_000").exists(),
            "no masks for supervised epochs"
        );
        let timeline = obs.write_timeline().unwrap();
        let text = std::fs::read_to_string(timeline).unwrap();
        assert_eq!(text.lines().count(), 1 + 5, "header + 5 epochs");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mask_history_records_evolution() {
        let (x, y) = toy_data(200, 24, 4);
        let mut net = Network::builder()
            .input(24)
            .hidden(2, 4, 0.25)
            .classes(2)
            .readout(ReadoutKind::Sgd)
            .backend(BackendKind::Parallel)
            .seed(5)
            .build()
            .unwrap();
        let history = MaskHistory::new();
        {
            let mut handle = &history;
            Trainer::new(TrainingParams {
                unsupervised_epochs: 4,
                supervised_epochs: 1,
                batch_size: 25,
                seed: 6,
                shuffle: true,
            })
            .fit_with_observers(&mut net, &x, &y, &mut [&mut handle])
            .unwrap();
        }
        assert_eq!(history.len(), 4);
        assert!(!history.is_empty());
        let snaps = history.snapshots();
        assert_eq!(snaps[0].1.shape(), (2, 24));
        // The toy problem concentrates information in half the inputs, so
        // plasticity moves at least some connections over four epochs.
        assert!(history.total_change_fraction() >= 0.0);
    }

    #[test]
    fn vti_only_mode_skips_pgm() {
        let (x, y) = toy_data(64, 16, 7);
        let mut net = Network::builder()
            .input(16)
            .hidden(1, 3, 0.5)
            .classes(2)
            .readout(ReadoutKind::Sgd)
            .backend(BackendKind::Naive)
            .seed(8)
            .build()
            .unwrap();
        let dir = std::env::temp_dir().join(format!("bcpnn_insitu_vti_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut obs = InSituObserver::new(&dir).vti_only();
        Trainer::new(TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 0,
            batch_size: 16,
            seed: 9,
            shuffle: false,
        })
        .fit_with_observers(&mut net, &x, &y, &mut [&mut obs])
        .unwrap();
        assert!(dir.join("unsup_epoch_000/mask.vti").exists());
        assert!(!dir.join("unsup_epoch_000/mask.pgm").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
