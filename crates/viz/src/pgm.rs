//! Portable GrayMap (PGM) image export.
//!
//! PGM is the simplest image format there is (a text header plus one
//! grayscale value per pixel), which makes it ideal for dumping receptive
//! fields and mask evolutions (Fig. 2 / Fig. 5) without an image library.

use std::io::Write;
use std::path::Path;

use bcpnn_tensor::Matrix;

/// Errors produced while writing PGM files.
#[derive(Debug)]
pub enum PgmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The field has a shape that cannot be written (e.g. empty).
    BadShape(String),
}

impl std::fmt::Display for PgmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PgmError::Io(e) => write!(f, "I/O error: {e}"),
            PgmError::BadShape(msg) => write!(f, "bad image shape: {msg}"),
        }
    }
}

impl std::error::Error for PgmError {}

impl From<std::io::Error> for PgmError {
    fn from(e: std::io::Error) -> Self {
        PgmError::Io(e)
    }
}

/// Write a matrix as an 8-bit ASCII PGM (`P2`) image. Values are linearly
/// rescaled from `[min, max]` of the data to `[0, 255]`; a constant matrix
/// maps to mid-gray.
pub fn write_pgm<W: Write>(field: &Matrix<f32>, mut w: W) -> Result<(), PgmError> {
    if field.rows() == 0 || field.cols() == 0 {
        return Err(PgmError::BadShape(format!(
            "image must be non-empty, got {:?}",
            field.shape()
        )));
    }
    let lo = field
        .as_slice()
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min);
    let hi = field
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    writeln!(w, "P2")?;
    writeln!(w, "# bcpnn-viz receptive field export")?;
    writeln!(w, "{} {}", field.cols(), field.rows())?;
    writeln!(w, "255")?;
    for r in 0..field.rows() {
        let mut line = String::new();
        for (c, &v) in field.row(r).iter().enumerate() {
            if c > 0 {
                line.push(' ');
            }
            let px = if scale == 0.0 {
                128
            } else {
                ((v - lo) * scale).round().clamp(0.0, 255.0) as u32
            };
            line.push_str(&px.to_string());
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Save a matrix as a `.pgm` file (creating parent directories).
pub fn save_pgm<P: AsRef<Path>>(field: &Matrix<f32>, path: P) -> Result<(), PgmError> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let f = std::fs::File::create(path)?;
    write_pgm(field, std::io::BufWriter::new(f))
}

/// Parse an ASCII PGM back into a matrix (used by tests and by the mask
/// comparison tooling).
pub fn read_pgm(text: &str) -> Result<Matrix<f32>, PgmError> {
    let mut tokens = text
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .flat_map(|l| l.split_whitespace());
    let magic = tokens
        .next()
        .ok_or_else(|| PgmError::BadShape("empty file".into()))?;
    if magic != "P2" {
        return Err(PgmError::BadShape(format!("expected P2, got {magic:?}")));
    }
    let mut next_usize = |what: &str| -> Result<usize, PgmError> {
        tokens
            .next()
            .ok_or_else(|| PgmError::BadShape(format!("missing {what}")))?
            .parse()
            .map_err(|_| PgmError::BadShape(format!("bad {what}")))
    };
    let cols = next_usize("width")?;
    let rows = next_usize("height")?;
    let maxval = next_usize("maxval")?;
    if maxval == 0 {
        return Err(PgmError::BadShape("maxval must be positive".into()));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for tok in tokens {
        let v: f32 = tok
            .parse()
            .map_err(|_| PgmError::BadShape(format!("bad pixel {tok:?}")))?;
        data.push(v / maxval as f32);
    }
    if data.len() != rows * cols {
        return Err(PgmError::BadShape(format!(
            "expected {} pixels, found {}",
            rows * cols,
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_dimensions_are_correct() {
        let img = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "P2");
        assert_eq!(lines[2], "3 2");
        assert_eq!(lines[3], "255");
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn binary_mask_maps_to_black_and_white() {
        let img = Matrix::from_vec(1, 4, vec![0.0f32, 1.0, 1.0, 0.0]);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let last = text.lines().last().unwrap();
        assert_eq!(last, "0 255 255 0");
    }

    #[test]
    fn constant_image_is_midgray() {
        let img = Matrix::filled(2, 2, 3.7f32);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().skip(4).all(|l| l == "128 128"));
    }

    #[test]
    fn roundtrip_through_read_pgm() {
        let img = Matrix::from_vec(2, 2, vec![0.0f32, 0.5, 0.75, 1.0]);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = read_pgm(&text).unwrap();
        assert_eq!(back.shape(), (2, 2));
        assert!(img.max_abs_diff(&back) < 0.01);
    }

    #[test]
    fn read_rejects_malformed_files() {
        assert!(read_pgm("P5\n2 2\n255\n0 0 0 0").is_err());
        assert!(read_pgm("P2\n2 2\n255\n0 0 0").is_err());
        assert!(read_pgm("").is_err());
    }

    #[test]
    fn empty_images_are_rejected() {
        let img = Matrix::zeros(0, 3);
        assert!(matches!(
            write_pgm(&img, Vec::new()),
            Err(PgmError::BadShape(_))
        ));
    }
}
