#!/usr/bin/env bash
# Refresh the committed benchmark baseline in one command:
#
#   ci/refresh-bench-baseline.sh
#
# Runs the gated benchmark suite with machine-readable output and rewrites
# ci/bench-baseline.json in the canonical (schema-tagged, name-sorted)
# format. Commit the result. CI's bench-regression job compares every run
# against this file with a percentage threshold, so refresh it on a machine
# representative of CI whenever a deliberate performance change lands.
#
# Benches build for the portable baseline target on purpose (same as CI):
# the per-tier benches compare the runtime AVX2 dispatch against the
# portable lanes build, and -C target-cpu=native would hand the portable
# tiers the same instructions, washing out the comparison. Export RUSTFLAGS
# to override.
set -euo pipefail
cd "$(dirname "$0")/.."

json="$(mktemp -t bench-json.XXXXXX)"
rm -f "$json"

BENCH_JSON="$json" cargo bench -p bcpnn-bench --bench backends
# The cascade group only (the criterion shim takes substring filters), so
# the baseline stays scoped to what CI's bench-regression job re-runs.
BENCH_JSON="$json" cargo bench -p bcpnn-bench --bench serving -- serve_cascade
cargo run --release -q -p bcpnn-bench --bin bench_compare -- \
    --current "$json" --write-baseline ci/bench-baseline.json
rm -f "$json"
echo "refreshed ci/bench-baseline.json"
