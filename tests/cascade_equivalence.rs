//! Equivalence tests for the quantized→f32 cascade: the router is an
//! *optimization*, so its output must be provably explained by its two
//! tiers — never a third behavior.
//!
//! * `escalate_below <= 0` short-circuits to the cheap tier: the cascade
//!   is bit-identical to running the quantized pipeline alone.
//! * `escalate_below >= 1` escalates everything: bit-identical to the
//!   full-precision pipeline alone.
//! * At an interior threshold, every row is bit-identical to whichever
//!   tier answered it — escalated rows match f32-alone exactly (row
//!   independence makes the gathered sub-batch equal the full batch's
//!   rows), cheap rows match quantized-alone exactly, and the routing
//!   decision itself is recomputable from the cheap tier's margins.
//!
//! The zero-allocation property of the cascade path is enforced in
//! `tests/alloc_regression.rs`, which extends the serving data-plane
//! allocation budget to `CascadeModel::predict_proba_into`.

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::uncertainty::margin;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams, Workspace};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_serve::CascadeModel;
use bcpnn_tensor::Matrix;

/// A trained f32 pipeline, its int8 quantization, and held-out features.
fn tiers(seed: u64) -> (Pipeline, QuantizedPipeline, Matrix<f32>) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 400,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        },
    )
    .unwrap();
    let quantized = QuantizedPipeline::quantize(&pipeline, QuantPrecision::Int8).unwrap();
    // Held-out rows the pipeline never trained on.
    let holdout = generate(&SyntheticHiggsConfig {
        n_samples: 64,
        seed: seed + 1,
        ..Default::default()
    });
    (pipeline, quantized, holdout.features)
}

/// Build a cascade over freshly quantized/cloned tiers of `seed`.
fn cascade_of(seed: u64, threshold: f32) -> CascadeModel {
    let (pipeline, quantized, _) = tiers(seed);
    CascadeModel::new("equiv", Box::new(quantized), Box::new(pipeline), threshold).unwrap()
}

fn assert_rows_bit_identical(got: &Matrix<f32>, want: &Matrix<f32>, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape drifted");
    for r in 0..got.rows() {
        for c in 0..got.cols() {
            assert_eq!(
                got.get(r, c).to_bits(),
                want.get(r, c).to_bits(),
                "{what}: row {r} col {c} drifted"
            );
        }
    }
}

#[test]
fn threshold_zero_is_the_quantized_tier_bit_for_bit() {
    let (_, quantized, x) = tiers(90);
    let cascade = cascade_of(90, 0.0);
    let want = quantized.predict_proba(&x).unwrap();
    let got = cascade.predict_proba(&x).unwrap();
    assert_rows_bit_identical(&got, &want, "threshold 0 vs quantized alone");
    assert_eq!(cascade.stats().escalations(), 0);
    assert_eq!(cascade.stats().cheap_hits(), x.rows() as u64);
}

#[test]
fn threshold_one_is_the_f32_tier_bit_for_bit() {
    let (pipeline, _, x) = tiers(91);
    let cascade = cascade_of(91, 1.0);
    let want = pipeline.predict_proba(&x).unwrap();
    let got = cascade.predict_proba(&x).unwrap();
    assert_rows_bit_identical(&got, &want, "threshold 1 vs f32 alone");
    assert_eq!(cascade.stats().escalations(), x.rows() as u64);
    assert_eq!(cascade.stats().cheap_hits(), 0);
}

#[test]
fn every_row_is_bit_identical_to_the_tier_that_answered_it() {
    let (pipeline, quantized, x) = tiers(92);
    let f32_rows = pipeline.predict_proba(&x).unwrap();
    let cheap_rows = quantized.predict_proba(&x).unwrap();

    // Pick the median cheap-tier margin as the threshold so both routes
    // are exercised on this holdout, whatever the seed produced.
    let mut margins: Vec<f32> = (0..x.rows()).map(|r| margin(cheap_rows.row(r))).collect();
    margins.sort_by(f32::total_cmp);
    let threshold = margins[margins.len() / 2];

    let cascade = cascade_of(92, threshold);
    let got = cascade.predict_proba(&x).unwrap();

    let mut escalated = 0u64;
    for r in 0..x.rows() {
        let from_cheap = margin(cheap_rows.row(r)) >= threshold;
        let want = if from_cheap { &cheap_rows } else { &f32_rows };
        if !from_cheap {
            escalated += 1;
        }
        for c in 0..got.cols() {
            assert_eq!(
                got.get(r, c).to_bits(),
                want.get(r, c).to_bits(),
                "row {r} (answered by {}) col {c} drifted",
                if from_cheap { "cheap tier" } else { "f32 tier" }
            );
        }
    }
    assert!(
        escalated > 0 && escalated < x.rows() as u64,
        "median threshold must split the holdout, escalated {escalated}/{}",
        x.rows()
    );
    assert_eq!(cascade.stats().escalations(), escalated);
    assert_eq!(cascade.stats().cheap_hits(), x.rows() as u64 - escalated);
}

#[test]
fn allocating_and_into_paths_agree_bit_for_bit() {
    let (_, _, x) = tiers(93);
    let cascade = cascade_of(93, 0.6);
    let alloc = cascade.predict_proba(&x).unwrap();
    let mut ws = Workspace::new();
    let mut out = Matrix::zeros(0, 0);
    cascade.predict_proba_into(&x, &mut ws, &mut out).unwrap();
    assert_rows_bit_identical(&out, &alloc, "predict_proba_into vs predict_proba");
}
