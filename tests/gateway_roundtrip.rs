//! End-to-end gateway tests over a real socket: HTTP predict must equal
//! direct in-process `Pipeline::predict_proba` **bit for bit** on both
//! backends, bad requests must be rejected without touching a serving
//! worker, the `/metrics` scrape must pass the Prometheus validity
//! parser, and a hot-swap issued over HTTP mid-flight must be atomic per
//! batch: every single-row response is served entirely by one model
//! version (rows of a multi-row request batch independently, so that is
//! the unit the guarantee covers).

use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::Dataset;
use bcpnn_gateway::{client, json, Gateway, GatewayConfig};
use bcpnn_serve::{
    BatchConfig, ModelRegistry, ServeTarget, ServedModel, ShardConfig, ShardedServer,
};
use std::time::Duration;

/// Train a tiny synthetic-Higgs pipeline on the given backend.
fn tiny_pipeline(seed: u64, backend: BackendKind) -> (Pipeline, Dataset) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 400,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(backend)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        },
    )
    .expect("tiny pipeline trains");
    (pipeline, data)
}

/// Gateway over a 2-shard server with small batches (so multi-row
/// requests really exercise batching).
fn gateway_over(registry: Arc<ModelRegistry>) -> (Gateway, Arc<ShardedServer>) {
    let server = Arc::new(ShardedServer::start(
        registry,
        ShardConfig {
            shards: 2,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                workers: 1,
            },
            ..ShardConfig::default()
        },
    ));
    let gateway = Gateway::start(
        Arc::clone(&server) as Arc<dyn ServeTarget>,
        GatewayConfig {
            workers: 4,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway binds an ephemeral port");
    (gateway, server)
}

/// Serialize feature rows the way a JSON client would: `f32` shortest
/// round-trip decimals in an array of arrays.
fn rows_body(data: &Dataset, rows: std::ops::Range<usize>) -> String {
    let rows: Vec<String> = rows
        .map(|r| {
            let cells: Vec<String> = data.features.row(r).iter().map(|v| v.to_string()).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Pull `predictions` out of a predict response as exact `f32`s.
fn predictions_of(body: &str) -> Vec<Vec<f32>> {
    let doc = json::parse(body).expect("response body is valid JSON");
    doc.get("predictions")
        .and_then(json::Json::as_array)
        .expect("response carries predictions")
        .iter()
        .map(|row| {
            row.as_array()
                .expect("prediction row is an array")
                .iter()
                .map(|cell| match cell {
                    json::Json::Num(n) => n.as_f32().expect("finite probability"),
                    other => panic!("non-numeric probability {other:?}"),
                })
                .collect()
        })
        .collect()
}

fn assert_http_matches_direct(backend: BackendKind) {
    let (pipeline, data) = tiny_pipeline(60, backend);
    let direct = pipeline
        .predict_proba(&data.features)
        .expect("direct inference succeeds");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, pipeline));
    let (gateway, _server) = gateway_over(registry);

    // 30 rows across several requests: batches form across rows and (with
    // hash routing) across shards, and every probability must still be
    // the exact bits the in-process call produces.
    for chunk in [0..10usize, 10..13, 13..30] {
        let body = rows_body(&data, chunk.clone());
        let response = client::request(
            gateway.local_addr(),
            "POST",
            "/v1/models/higgs/predict",
            &[],
            body.as_bytes(),
        )
        .expect("predict request round-trips");
        assert_eq!(response.status, 200, "body: {}", response.body_str());
        let got = predictions_of(&response.body_str());
        assert_eq!(got.len(), chunk.len());
        for (i, r) in chunk.enumerate() {
            assert_eq!(got[i].len(), 2);
            for c in 0..2 {
                assert_eq!(
                    got[i][c].to_bits(),
                    direct.get(r, c).to_bits(),
                    "row {r} col {c}: HTTP {} vs direct {} must be bit-identical",
                    got[i][c],
                    direct.get(r, c)
                );
            }
        }
    }
}

#[test]
fn http_predict_matches_direct_bitwise_naive() {
    assert_http_matches_direct(BackendKind::Naive);
}

#[test]
fn http_predict_matches_direct_bitwise_parallel() {
    assert_http_matches_direct(BackendKind::Parallel);
}

#[test]
fn bad_requests_are_4xx_and_never_touch_a_worker() {
    let (pipeline, _) = tiny_pipeline(61, BackendKind::Naive);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, pipeline));
    let (gateway, server) = gateway_over(registry);
    let addr = gateway.local_addr();

    // Malformed JSON, ragged rows, wrong shape of document.
    for body in [
        &b"{not json"[..],
        b"[[1,2],[3]]",
        b"[]",
        b"[[]]",
        b"\"rows\"",
        b"[[1,null]]",
    ] {
        let r = client::request(addr, "POST", "/v1/models/higgs/predict", &[], body).unwrap();
        assert_eq!(r.status, 400, "body {body:?} -> {}", r.body_str());
    }
    // Wrong feature width: parses fine, fails serve-side validation
    // before entering the batch queue.
    let r = client::request(addr, "POST", "/v1/models/higgs/predict", &[], b"[[1,2,3]]").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_str().contains("features"));
    // Unknown routes and unknown models.
    assert_eq!(
        client::request(addr, "GET", "/v2/predict", &[], b"")
            .unwrap()
            .status,
        404
    );
    let r = client::request(addr, "POST", "/v1/models/ghost/predict", &[], b"[[1]]").unwrap();
    assert_eq!(r.status, 404);
    // Oversized body: rejected from Content-Length alone.
    let huge = vec![b'9'; 5 * 1024 * 1024];
    let r = client::request(addr, "POST", "/v1/models/higgs/predict", &[], &huge).unwrap();
    assert_eq!(r.status, 413);
    // An expired deadline comes back 504 (it reached the stack, was never
    // executed).
    let wide_row = format!("[[{}]]", vec!["0.5"; 28].join(","));
    let r = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Deadline-Ms", "0")],
        wide_row.as_bytes(),
    )
    .unwrap();
    assert_eq!(r.status, 504);

    let m = server.metrics();
    assert_eq!(
        m.responses, 0,
        "no malformed request may consume a forward pass"
    );
    assert_eq!(m.requests, 1, "only the deadline probe was accepted");
    assert_eq!(m.expired, 1, "and it expired unexecuted");
    let g = gateway.metrics();
    assert_eq!(g.status_2xx, 0);
    assert!(g.status_4xx >= 9);
}

#[test]
fn hot_swap_over_http_is_atomic_mid_flight() {
    let (v1, data) = tiny_pipeline(62, BackendKind::Naive);
    let (v2, _) = tiny_pipeline(63, BackendKind::Naive);
    let direct_v1 = v1.predict_proba(&data.features).unwrap();
    let direct_v2 = v2.predict_proba(&data.features).unwrap();

    let artifact_dir =
        std::env::temp_dir().join(format!("bcpnn-gateway-roundtrip-{}", std::process::id()));
    v2.save(&artifact_dir).expect("v2 artifact saves");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, v1));
    let (gateway, server) = gateway_over(registry);
    let addr = gateway.local_addr();

    // Hammer single-row predictions from several client threads while the
    // swap PUT lands. Single-row responses are the atomicity unit: each
    // must be entirely v1 bits or entirely v2 bits — never a mixture,
    // never an error. (A multi-row request straddling the swap may mix
    // versions *across* rows, which is why the clients send one row each.)
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mix_seen = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for t in 0..3 {
            let stop = Arc::clone(&stop);
            let data = &data;
            let direct_v1 = &direct_v1;
            let direct_v2 = &direct_v2;
            clients.push(scope.spawn(move || {
                let mut swapped_seen = false;
                let mut i = t;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = i % 40;
                    let body = rows_body(data, r..r + 1);
                    let response = client::request(
                        addr,
                        "POST",
                        "/v1/models/higgs/predict",
                        &[],
                        body.as_bytes(),
                    )
                    .expect("predict keeps working through the swap");
                    assert_eq!(response.status, 200, "{}", response.body_str());
                    let got = predictions_of(&response.body_str());
                    let is_v1 =
                        (0..2).all(|c| got[0][c].to_bits() == direct_v1.get(r, c).to_bits());
                    let is_v2 =
                        (0..2).all(|c| got[0][c].to_bits() == direct_v2.get(r, c).to_bits());
                    assert!(
                        is_v1 || is_v2,
                        "row {r}: prediction matches neither version exactly"
                    );
                    swapped_seen |= is_v2;
                    i += 1;
                }
                swapped_seen
            }));
        }

        // Let traffic build, then swap over HTTP.
        std::thread::sleep(Duration::from_millis(50));
        let swap_body = format!(
            "{{\"path\":\"{}\",\"version\":2,\"backend\":\"naive\"}}",
            artifact_dir.display()
        );
        let swap = client::request(addr, "PUT", "/v1/models/higgs", &[], swap_body.as_bytes())
            .expect("swap request round-trips");
        assert_eq!(swap.status, 200, "{}", swap.body_str());
        let doc = json::parse(&swap.body_str()).unwrap();
        assert_eq!(doc.get("version").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("displaced_version").unwrap().as_u64(), Some(1));

        // Give clients time to observe v2, then stop them.
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect::<Vec<bool>>()
    });
    assert!(
        mix_seen.iter().any(|&saw_v2| saw_v2),
        "at least one client must observe post-swap predictions"
    );

    // The listing now reports version 2, and post-swap predictions are
    // exactly the loaded artifact's bits (load(save(v2)) == v2 is the
    // persistence layer's bit-exactness guarantee).
    let listing = client::request(addr, "GET", "/v1/models", &[], b"").unwrap();
    assert!(listing.body_str().contains("\"version\":2"));
    let response = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[],
        rows_body(&data, 0..5).as_bytes(),
    )
    .unwrap();
    let got = predictions_of(&response.body_str());
    for r in 0..5 {
        for c in 0..2 {
            assert_eq!(got[r][c].to_bits(), direct_v2.get(r, c).to_bits());
        }
    }
    assert_eq!(server.registry().hot_swaps(), 1);
    let _ = std::fs::remove_dir_all(&artifact_dir);
}

#[test]
fn metrics_scrape_is_valid_and_complete_after_traffic() {
    let (pipeline, data) = tiny_pipeline(64, BackendKind::Naive);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, pipeline));
    let (gateway, server) = gateway_over(registry);
    let addr = gateway.local_addr();

    let response = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Priority", "high")],
        rows_body(&data, 0..12).as_bytes(),
    )
    .unwrap();
    assert_eq!(response.status, 200);

    let scrape = client::request(addr, "GET", "/metrics", &[], b"").unwrap();
    assert_eq!(scrape.status, 200);
    assert_eq!(
        scrape.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    let text = scrape.body_str();
    let samples =
        bcpnn_serve::validate_prometheus(&text).expect("combined exposition passes the parser");
    assert!(
        samples > 50,
        "rich exposition expected, got {samples} samples"
    );

    // Serve-side: per-shard + aggregate, with the 12 rows accounted once.
    assert!(text.contains("bcpnn_serve_requests_total{shard=\"all\"} 12"));
    assert!(text.contains("bcpnn_serve_queue_depth"));
    // Gateway-side: the predict request and its rows, counted at the
    // gateway's own layer (no double count inside shard=\"all\").
    assert!(text.contains("bcpnn_gateway_predict_rows_total 12"));
    assert!(text.contains("bcpnn_gateway_responses_total{class=\"2xx\"} 1"));
    // Cross-check against the in-process snapshots.
    assert_eq!(server.metrics().responses, 12);
    assert_eq!(gateway.metrics().predict_rows, 12);
}
