//! Scaled-down versions of the paper's experiments, asserting the *shape*
//! of the results (the trends in Fig. 3 and Fig. 4) rather than absolute
//! numbers. These are the regression tests that keep the reproduction
//! honest: if a refactor breaks capacity scaling, receptive-field scaling,
//! or the timing behaviour, these tests catch it.

use bcpnn_bench::{prepare_higgs, run_repeated, BcpnnRunConfig, HiggsDataConfig};

fn data() -> bcpnn_bench::HiggsExperimentData {
    prepare_higgs(&HiggsDataConfig {
        train_per_class: 1500,
        test_per_class: 750,
        ..Default::default()
    })
}

/// Fig. 3 (capacity axis): more minicolumns per hypercolumn give higher
/// accuracy, with diminishing returns.
#[test]
fn fig3_shape_more_mcus_help_with_diminishing_returns() {
    let data = data();
    let run = |n_mcu: usize| {
        let cfg = BcpnnRunConfig {
            n_hcu: 1,
            n_mcu,
            receptive_field: 0.30,
            unsupervised_epochs: 2,
            supervised_epochs: 4,
            ..Default::default()
        };
        run_repeated(&cfg, &data, 2, 31).1
    };
    // On the synthetic data the capacity effect saturates earlier than in
    // the paper (tens of MCUs rather than hundreds — see EXPERIMENTS.md), so
    // the shape is asserted on the 3 -> 30 -> 300 ladder where it is
    // unambiguous: a 3-MCU hypercolumn cannot represent the input structure.
    let small = run(3);
    let medium = run(30);
    let large = run(300);
    assert!(
        medium.mean_accuracy > small.mean_accuracy + 0.005,
        "30 MCUs ({:.4}) should clearly beat 3 MCUs ({:.4})",
        medium.mean_accuracy,
        small.mean_accuracy
    );
    assert!(
        large.mean_accuracy > small.mean_accuracy,
        "300 MCUs ({:.4}) should beat 3 MCUs ({:.4})",
        large.mean_accuracy,
        small.mean_accuracy
    );
    let first_jump = medium.mean_accuracy - small.mean_accuracy;
    let second_jump = large.mean_accuracy - medium.mean_accuracy;
    assert!(
        second_jump < first_jump,
        "capacity gains must show diminishing returns ({first_jump:.4} then {second_jump:.4})"
    );
}

/// Fig. 3 (time axis): training time grows with the total number of units
/// (HCUs × MCUs).
#[test]
fn fig3_shape_training_time_grows_with_network_size() {
    let data = data();
    let run = |n_hcu: usize, n_mcu: usize| {
        let cfg = BcpnnRunConfig {
            n_hcu,
            n_mcu,
            receptive_field: 0.30,
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            ..Default::default()
        };
        run_repeated(&cfg, &data, 2, 37).1.mean_time_s
    };
    let small = run(1, 50);
    let large = run(4, 400);
    assert!(
        large > small * 1.5,
        "a 32x bigger network should take clearly longer to train ({small:.3}s vs {large:.3}s)"
    );
}

/// Fig. 4 (accuracy axis): a tiny receptive field cannot do much better than
/// chance; a mid-sized one can.
#[test]
fn fig4_shape_tiny_receptive_fields_limit_accuracy() {
    let data = data();
    let run = |density: f64| {
        let cfg = BcpnnRunConfig {
            n_hcu: 1,
            n_mcu: 150,
            receptive_field: density,
            unsupervised_epochs: 2,
            supervised_epochs: 4,
            ..Default::default()
        };
        run_repeated(&cfg, &data, 2, 41).1.mean_accuracy
    };
    // ~1% density = 3 of 280 inputs: barely any information reaches the HCU.
    let tiny = run(0.01);
    let mid = run(0.40);
    assert!(
        tiny < 0.62,
        "a 1% receptive field should stay close to chance, got {tiny:.4}"
    );
    assert!(
        mid > tiny + 0.05,
        "a 40% receptive field ({mid:.4}) must clearly beat a 1% one ({tiny:.4})"
    );
}

/// Fig. 4 (time axis): training time is nearly independent of the
/// receptive-field density (the trace update touches every connection
/// regardless of the mask).
#[test]
fn fig4_shape_training_time_is_flat_in_density() {
    let data = data();
    let run = |density: f64| {
        let cfg = BcpnnRunConfig {
            n_hcu: 1,
            n_mcu: 200,
            receptive_field: density,
            unsupervised_epochs: 2,
            supervised_epochs: 2,
            ..Default::default()
        };
        run_repeated(&cfg, &data, 2, 43).1.mean_time_s
    };
    let sparse = run(0.05);
    let dense = run(0.95);
    // The paper sees 111s vs 132.9s (a ~20% spread). Allow a factor of two
    // here to stay robust on noisy CI machines — the point is that time does
    // NOT scale ~19x with a 19x denser mask.
    let ratio = dense.max(sparse) / sparse.min(dense).max(1e-9);
    assert!(
        ratio < 2.0,
        "training time should be nearly flat in density (5%: {sparse:.3}s, 95%: {dense:.3}s)"
    );
}

/// Headline shape: the hybrid (BCPNN + SGD) head is at least as good as the
/// associative readout on AUC, mirroring the paper's 76.4 vs 75.5.
#[test]
fn headline_shape_hybrid_head_does_not_lose_to_the_associative_readout() {
    let data = data();
    let cfg = BcpnnRunConfig {
        n_hcu: 1,
        n_mcu: 300,
        receptive_field: 0.40,
        unsupervised_epochs: 3,
        // Enough supervised epochs that the SGD head is not under-fitted on
        // this reduced training-set size (the paper trains the hybrid head
        // to convergence before reporting 69.15%).
        supervised_epochs: 16,
        ..Default::default()
    };
    let (outcomes, agg) = run_repeated(&cfg, &data, 3, 47);
    let bcpnn_auc: f64 = outcomes
        .iter()
        .map(|o| o.bcpnn.as_ref().expect("hybrid trains both heads").auc)
        .sum::<f64>()
        / outcomes.len() as f64;
    assert!(
        agg.mean_auc >= bcpnn_auc - 0.01,
        "hybrid AUC ({:.4}) should not fall behind the associative readout ({bcpnn_auc:.4})",
        agg.mean_auc
    );
}
