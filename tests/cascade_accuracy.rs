//! The cascade router's accuracy contract, enforced by the CI
//! `cascade-accuracy` gate: with a threshold calibrated on a held-out
//! split, the quantized→f32 cascade must (1) keep held-out accuracy
//! within half a point of the full-precision pipeline and (2) answer a
//! clear majority of rows from the cheap tier — otherwise the router is
//! either wrong or pointless.
//!
//! Why the bound holds: escalated rows are answered by the f32 tier
//! *bit-for-bit* (see `tests/cascade_equivalence.rs`), so the only rows
//! that can diverge from f32 are the confident cheap-tier rows — exactly
//! the ones whose top-2 margin is widest and whose argmax int8
//! perturbation is least able to flip. Run with `--nocapture`: the
//! summary lines feed `$GITHUB_STEP_SUMMARY`.

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::uncertainty::margin;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::Dataset;
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_serve::CascadeModel;

/// The cascade may cost at most half an accuracy point vs f32 alone.
const MAX_ACCURACY_COST: f64 = 0.005;
/// …and must answer at least 60% of rows from the cheap tier to be
/// worth routing at all.
const MIN_CHEAP_RATE: f64 = 0.60;
/// Escalate the lowest-margin ~35% of traffic, calibrated on held-out
/// data: comfortably above the 60% cheap-tier floor, low enough that
/// the uncertain tail gets full precision.
const TARGET_CHEAP_RATE: f64 = 0.65;

fn train_and_splits() -> (Pipeline, Dataset, Dataset) {
    let train = generate(&SyntheticHiggsConfig {
        n_samples: 2000,
        seed: 31,
        ..Default::default()
    });
    // The synthetic generator draws i.i.d. collisions, so fresh seeds are
    // held-out splits by construction: one to calibrate the escalation
    // threshold, one to measure — never the same rows for both.
    let calibration = generate(&SyntheticHiggsConfig {
        n_samples: 800,
        seed: 33,
        ..Default::default()
    });
    let holdout = generate(&SyntheticHiggsConfig {
        n_samples: 800,
        seed: 32,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &train,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(31),
        TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 3,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training succeeds");
    (pipeline, calibration, holdout)
}

fn accuracy(predictor: &dyn Predictor, data: &Dataset) -> f64 {
    let predictions = predictor.predict(&data.features).expect("predict succeeds");
    let hits = predictions
        .iter()
        .zip(&data.labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / data.labels.len() as f64
}

/// The cheap tier's margin at the `1 - TARGET_CHEAP_RATE` quantile of
/// the calibration split: rows above it stay cheap.
fn calibrated_threshold(quantized: &QuantizedPipeline, calibration: &Dataset) -> f32 {
    let proba = quantized
        .predict_proba(&calibration.features)
        .expect("cheap-tier calibration pass succeeds");
    let mut margins: Vec<f32> = (0..proba.rows()).map(|r| margin(proba.row(r))).collect();
    margins.sort_by(f32::total_cmp);
    let escalate_rank = ((1.0 - TARGET_CHEAP_RATE) * margins.len() as f64) as usize;
    margins[escalate_rank]
}

#[test]
fn cascade_accuracy_tracks_f32_with_a_cheap_tier_majority() {
    let (pipeline, calibration, holdout) = train_and_splits();
    let f32_acc = accuracy(&pipeline, &holdout);
    assert!(
        f32_acc > 0.55,
        "f32 reference must beat chance, got {f32_acc}"
    );

    let quantized =
        QuantizedPipeline::quantize(&pipeline, QuantPrecision::Int8).expect("quantization");
    let quantized_acc = accuracy(&quantized, &holdout);
    let threshold = calibrated_threshold(&quantized, &calibration);

    let cascade = CascadeModel::new(
        "accuracy-gate",
        Box::new(quantized),
        Box::new(pipeline),
        threshold,
    )
    .expect("cascade builds");
    let cascade_acc = accuracy(&cascade, &holdout);

    let stats = cascade.stats();
    let answered = stats.cheap_hits() + stats.escalations();
    assert_eq!(answered, holdout.labels.len() as u64);
    let cheap_rate = stats.cheap_hits() as f64 / answered as f64;

    // Markdown-table summary lines for $GITHUB_STEP_SUMMARY.
    println!("| metric | value |");
    println!("|---|---|");
    println!("| f32 accuracy | {f32_acc:.4} |");
    println!("| int8 accuracy | {quantized_acc:.4} |");
    println!("| cascade accuracy | {cascade_acc:.4} |");
    println!("| escalation threshold (calibrated margin) | {threshold:.4} |");
    println!("| cheap-tier hit rate | {cheap_rate:.4} |");
    println!("| escalations | {} |", stats.escalations());

    assert!(
        cascade_acc >= f32_acc - MAX_ACCURACY_COST,
        "cascade accuracy {cascade_acc:.4} fell more than {MAX_ACCURACY_COST} below f32 {f32_acc:.4}"
    );
    assert!(
        cheap_rate >= MIN_CHEAP_RATE,
        "cheap-tier hit rate {cheap_rate:.4} is below the {MIN_CHEAP_RATE} floor — the cascade is not routing"
    );
}
