//! Cross-tier equivalence for the runtime SIMD dispatch layer
//! (`bcpnn_tensor::simd::dispatch`), in the spirit of
//! `into_equivalence.rs`: every dispatch tier must agree with the scalar
//! reference — **bit-for-bit** for the elementwise and index kernels
//! (axpy / accumulate / i8 / bf16 / argmax / column sums), and within the
//! documented `exp_approx` tolerance for the softmax and sum kernels.
//! On top of the kernel checks, a fitted pipeline must predict the same
//! classes (accuracy delta ≤ 1e-5) on every tier.
//!
//! Everything runs inside a single `#[test]` because the later phases force
//! the process-wide tier with `set_tier`; separate tests would race each
//! other's global state under the parallel test runner.

use bcpnn_backend::{Backend, BackendKind, NaiveBackend, VectorizedBackend};
use bcpnn_core::metrics::accuracy;
use bcpnn_core::{Network, Pipeline, Predictor, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_tensor::simd::dispatch::{self, SimdTier};
use bcpnn_tensor::{Matrix, MatrixRng};

const TIERS: [SimdTier; 3] = [SimdTier::Scalar, SimdTier::Lanes, SimdTier::Avx2];

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Ragged lengths crossing the 8-lane boundary every way that matters.
const LENS: [usize; 7] = [0, 1, 7, 8, 9, 33, 250];

fn elementwise_kernels_are_bit_exact_across_tiers(rng: &mut MatrixRng) {
    for len in LENS {
        let base: Vec<f32> = rng.uniform(1, len.max(1), -2.0, 2.0).into_vec()[..len].to_vec();
        let x: Vec<f32> = rng.uniform(1, len.max(1), -2.0, 2.0).into_vec()[..len].to_vec();
        let codes_i8: Vec<i8> = rng.uniform::<f32>(1, len.max(1), -127.0, 127.0).into_vec()[..len]
            .iter()
            .map(|&v| v as i8)
            .collect();
        // bf16 patterns from real finite f32s (truncation keeps them finite).
        let codes_bf16: Vec<u16> = x.iter().map(|v| (v.to_bits() >> 16) as u16).collect();
        let a = 0.37f32;

        let mut want_axpy = base.clone();
        dispatch::axpy_with(SimdTier::Scalar, &mut want_axpy, a, &x);
        let mut want_acc = base.clone();
        dispatch::accumulate_with(SimdTier::Scalar, &mut want_acc, &x);
        let mut want_i8acc = base.clone();
        dispatch::accumulate_i8_with(SimdTier::Scalar, &mut want_i8acc, &codes_i8);
        let mut want_i8axpy = base.clone();
        dispatch::axpy_i8_with(SimdTier::Scalar, &mut want_i8axpy, a, &codes_i8);
        let mut want_bf16 = base.clone();
        dispatch::axpy_bf16_with(SimdTier::Scalar, &mut want_bf16, a, &codes_bf16);
        let want_argmax = dispatch::argmax_with(SimdTier::Scalar, &x);

        for tier in [SimdTier::Lanes, SimdTier::Avx2] {
            let mut got = base.clone();
            dispatch::axpy_with(tier, &mut got, a, &x);
            assert_eq!(bits(&got), bits(&want_axpy), "axpy {tier:?} len {len}");

            let mut got = base.clone();
            dispatch::accumulate_with(tier, &mut got, &x);
            assert_eq!(bits(&got), bits(&want_acc), "accumulate {tier:?} len {len}");

            let mut got = base.clone();
            dispatch::accumulate_i8_with(tier, &mut got, &codes_i8);
            assert_eq!(
                bits(&got),
                bits(&want_i8acc),
                "accumulate_i8 {tier:?} len {len}"
            );

            let mut got = base.clone();
            dispatch::axpy_i8_with(tier, &mut got, a, &codes_i8);
            assert_eq!(bits(&got), bits(&want_i8axpy), "axpy_i8 {tier:?} len {len}");

            let mut got = base.clone();
            dispatch::axpy_bf16_with(tier, &mut got, a, &codes_bf16);
            assert_eq!(bits(&got), bits(&want_bf16), "axpy_bf16 {tier:?} len {len}");

            assert_eq!(
                dispatch::argmax_with(tier, &x),
                want_argmax,
                "argmax {tier:?} len {len}"
            );
        }
    }

    // argmax edge semantics: first-max ties and NaNs, on every tier.
    let with_nan = [0.0, f32::NAN, 2.0, 1.0, 0.5, 0.25, 0.1, 0.0, -1.0];
    let ties = [1.0, 3.0, 3.0, 2.0, 3.0, 0.0, 0.0, 0.0, 3.0];
    for tier in TIERS {
        assert_eq!(dispatch::argmax_with(tier, &with_nan), 2, "NaN {tier:?}");
        assert_eq!(dispatch::argmax_with(tier, &ties), 1, "ties {tier:?}");
        assert_eq!(dispatch::argmax_with(tier, &[]), 0, "empty {tier:?}");
    }
}

fn matrix_kernels_are_bit_exact_across_tiers(rng: &mut MatrixRng) {
    for (rows, cols) in [(0, 5), (1, 1), (4, 7), (5, 8), (6, 19), (9, 64)] {
        let m: Matrix<f32> = rng.uniform(rows, cols, -3.0, 3.0);
        let mut want_sums = Vec::new();
        dispatch::col_sums_into_with(SimdTier::Scalar, &m, &mut want_sums);
        let mut want_idx = Vec::new();
        dispatch::row_argmax_into_with(SimdTier::Scalar, &m, &mut want_idx);
        for tier in [SimdTier::Lanes, SimdTier::Avx2] {
            let mut sums = Vec::new();
            dispatch::col_sums_into_with(tier, &m, &mut sums);
            assert_eq!(
                bits(&sums),
                bits(&want_sums),
                "col_sums {tier:?} {rows}x{cols}"
            );
            let mut idx = Vec::new();
            dispatch::row_argmax_into_with(tier, &m, &mut idx);
            assert_eq!(idx, want_idx, "row_argmax {tier:?} {rows}x{cols}");
        }
    }
}

fn sum_stays_within_tolerance(rng: &mut MatrixRng) {
    for len in [9usize, 100, 1000] {
        let x: Vec<f32> = rng.uniform(1, len, -1.0, 1.0).into_vec();
        let want = dispatch::sum_with(SimdTier::Scalar, &x);
        let abs: f32 = x.iter().map(|v| v.abs()).sum();
        for tier in [SimdTier::Lanes, SimdTier::Avx2] {
            let got = dispatch::sum_with(tier, &x);
            assert!(
                (got - want).abs() <= 1e-6 * abs.max(1.0),
                "sum {tier:?} len {len}: {got} vs {want}"
            );
        }
    }
}

/// The scalar tier of the shared softmax kernel must be the legacy naive
/// loop bit-for-bit; the polynomial tiers must agree within the documented
/// `exp_approx` tolerance (probabilities live in [0, 1], so absolute diff).
fn softmax_matches_scalar_reference(rng: &mut MatrixRng) {
    for (rows, group, groups) in [(1, 1, 4), (5, 4, 3), (9, 32, 4), (3, 7, 2)] {
        let m: Matrix<f32> = rng.normal(rows, group * groups, 0.0, 3.0);

        // Legacy loop, verbatim from the pre-dispatch NaiveBackend.
        let mut legacy = m.clone();
        for r in 0..legacy.rows() {
            for seg in legacy.row_mut(r).chunks_mut(group) {
                let max = seg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut total = 0.0f32;
                for v in seg.iter_mut() {
                    *v = (*v - max).exp();
                    total += *v;
                }
                if total > 0.0 {
                    for v in seg.iter_mut() {
                        *v /= total;
                    }
                } else {
                    let u = 1.0 / seg.len() as f32;
                    for v in seg.iter_mut() {
                        *v = u;
                    }
                }
            }
        }

        let mut scalar = m.clone();
        dispatch::softmax_groups_into_with(SimdTier::Scalar, &mut scalar, group);
        assert_eq!(
            bits(scalar.as_slice()),
            bits(legacy.as_slice()),
            "scalar tier must be the legacy loop bit-for-bit ({rows}x{group}x{groups})"
        );

        for tier in [SimdTier::Lanes, SimdTier::Avx2] {
            let mut got = m.clone();
            dispatch::softmax_groups_into_with(tier, &mut got, group);
            assert!(
                got.max_abs_diff(&scalar) <= 2e-6,
                "softmax {tier:?} drifted {} from scalar ({rows}x{group}x{groups})",
                got.max_abs_diff(&scalar)
            );
            // Each group still normalises exactly enough to serve.
            for r in 0..got.rows() {
                for seg in got.row(r).chunks(group) {
                    let s: f32 = seg.iter().sum();
                    assert!((s - 1.0).abs() < 1e-5, "{tier:?} group sum {s}");
                }
            }
        }
    }
}

/// Naive and vectorized backends must stay bit-identical on *every* forced
/// tier — they route through the same dispatch kernels.
fn backends_agree_per_tier(rng: &mut MatrixRng) {
    let prev = dispatch::active_tier();
    for tier in TIERS {
        let installed = dispatch::set_tier(tier);
        let m: Matrix<f32> = rng.normal(6, 24, 0.0, 2.0);
        let mut a = m.clone();
        let mut b = m;
        NaiveBackend::new().grouped_softmax(&mut a, 4);
        VectorizedBackend::new().grouped_softmax(&mut b, 4);
        assert_eq!(
            bits(a.as_slice()),
            bits(b.as_slice()),
            "naive vs vectorized on {installed:?}"
        );
    }
    dispatch::set_tier(prev);
}

/// End-to-end: one pipeline fitted on the scalar tier must predict the same
/// probabilities (≤ 1e-5) and the same accuracy (delta ≤ 1e-5) when served
/// on every other tier.
fn end_to_end_predict_agrees_across_tiers() {
    let prev = dispatch::active_tier();
    dispatch::set_tier(SimdTier::Scalar);

    let data = generate(&SyntheticHiggsConfig {
        n_samples: 400,
        seed: 42,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(42),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
    )
    .unwrap();

    let proba_scalar = pipeline.predict_proba(&data.features).unwrap();
    let preds_scalar = pipeline.predict(&data.features).unwrap();
    let acc_scalar = accuracy(&preds_scalar, &data.labels);

    for tier in [SimdTier::Lanes, SimdTier::Avx2] {
        let installed = dispatch::set_tier(tier);
        let proba = pipeline.predict_proba(&data.features).unwrap();
        assert!(
            proba.max_abs_diff(&proba_scalar) <= 1e-5,
            "{installed:?} probabilities drifted {} from the libm path",
            proba.max_abs_diff(&proba_scalar)
        );
        let preds = pipeline.predict(&data.features).unwrap();
        let acc = accuracy(&preds, &data.labels);
        assert!(
            (acc - acc_scalar).abs() <= 1e-5,
            "{installed:?} accuracy {acc} vs scalar {acc_scalar}"
        );
    }
    dispatch::set_tier(prev);
}

#[test]
fn every_dispatch_tier_agrees_with_scalar() {
    // On machines without AVX2 the Avx2 requests degrade to Lanes — the
    // assertions then compare Lanes against itself, which keeps this test
    // meaningful-and-green on any x86 and on non-x86 targets alike.
    let mut rng = MatrixRng::seed_from(77);
    elementwise_kernels_are_bit_exact_across_tiers(&mut rng);
    matrix_kernels_are_bit_exact_across_tiers(&mut rng);
    sum_stays_within_tolerance(&mut rng);
    softmax_matches_scalar_reference(&mut rng);
    backends_agree_per_tier(&mut rng);
    end_to_end_predict_agrees_across_tiers();
}
