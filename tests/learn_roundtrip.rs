//! End-to-end online learning over the gateway: labeled rows POSTed to
//! `/v1/models/{name}/learn` must flow through the ingest queue into the
//! shadow trainer and come back out — via the accuracy-gated automatic
//! hot-swap — as a measurably better served model, while concurrent
//! predict traffic never sees an error or a paused response. The learn
//! metric families must join the `/metrics` scrape and stay valid.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bcpnn_backend::BackendKind;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::Dataset;
use bcpnn_gateway::{client, json, Gateway, GatewayConfig};
use bcpnn_learn::{LearnerConfig, OnlineLearner};
use bcpnn_serve::{ModelRegistry, ServeTarget, ServedModel, ShardConfig, ShardedServer};

/// A deliberately under-trained base: few samples, one epoch each —
/// plenty of headroom for the online stream to improve on.
fn weak_base(seed: u64) -> Pipeline {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 80,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        8,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 40,
            ..Default::default()
        },
    )
    .expect("weak base trains");
    pipeline
}

fn rows_json(data: &Dataset, rows: std::ops::Range<usize>) -> String {
    let rows: Vec<String> = rows
        .map(|r| {
            let cells: Vec<String> = data.features.row(r).iter().map(|v| v.to_string()).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Accuracy of the served model on `eval`, measured through HTTP predict.
fn served_accuracy(addr: std::net::SocketAddr, eval: &Dataset) -> f64 {
    let n = eval.labels.len();
    let mut hits = 0usize;
    for start in (0..n).step_by(50) {
        let end = (start + 50).min(n);
        let body = rows_json(eval, start..end);
        let response = client::request(
            addr,
            "POST",
            "/v1/models/higgs/predict",
            &[],
            body.as_bytes(),
        )
        .expect("predict round-trips");
        assert_eq!(response.status, 200, "{}", response.body_str());
        let doc = json::parse(&response.body_str()).unwrap();
        let predictions = doc
            .get("predictions")
            .and_then(json::Json::as_array)
            .expect("predictions present");
        for (i, row) in predictions.iter().enumerate() {
            let cells = row.as_array().unwrap();
            let p0 = match &cells[0] {
                json::Json::Num(v) => v.as_f32().unwrap(),
                other => panic!("non-numeric probability {other:?}"),
            };
            let p1 = match &cells[1] {
                json::Json::Num(v) => v.as_f32().unwrap(),
                other => panic!("non-numeric probability {other:?}"),
            };
            let predicted = usize::from(p1 > p0);
            if predicted == eval.labels[start + i] {
                hits += 1;
            }
        }
    }
    hits as f64 / n as f64
}

#[test]
fn posted_rows_improve_the_served_model_with_zero_downtime() {
    let base = weak_base(71);
    let stream = generate(&SyntheticHiggsConfig {
        n_samples: 2000,
        seed: 72,
        ..Default::default()
    });
    let eval = generate(&SyntheticHiggsConfig {
        n_samples: 400,
        seed: 73,
        ..Default::default()
    });

    let state_dir =
        std::env::temp_dir().join(format!("bcpnn-learn-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, base.clone()));
    let server = Arc::new(ShardedServer::start(
        Arc::clone(&registry),
        ShardConfig::new(2),
    ));
    let learner = Arc::new(
        OnlineLearner::start(
            Arc::clone(&registry),
            "higgs",
            &base,
            LearnerConfig {
                state_dir: state_dir.clone(),
                backend: BackendKind::Naive,
                fold_rows: 64,
                publish_rows: 400,
                publish_interval: Duration::from_secs(3600),
                reservoir_stride: 10,
                min_eval_rows: 32,
                accuracy_delta: 0.02,
                ..LearnerConfig::default()
            },
        )
        .expect("learner starts"),
    );
    let gateway = Gateway::start_with_learners(
        Arc::clone(&server) as Arc<dyn ServeTarget>,
        GatewayConfig {
            workers: 4,
            ..GatewayConfig::default()
        },
        vec![Arc::clone(&learner)],
    )
    .expect("gateway binds an ephemeral port");
    let addr = gateway.local_addr();

    let base_accuracy = served_accuracy(addr, &eval);

    // Zero-downtime clause: predict traffic hammers throughout the learn
    // stream and every publish, and must never see a non-200.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let (improved, streamed) = std::thread::scope(|scope| {
        let mut predictors = Vec::new();
        for t in 0..2 {
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let eval = &eval;
            predictors.push(scope.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let r = i % 100;
                    let body = rows_json(eval, r..r + 1);
                    let response = client::request(
                        addr,
                        "POST",
                        "/v1/models/higgs/predict",
                        &[],
                        body.as_bytes(),
                    )
                    .expect("predict keeps working while learning");
                    assert_eq!(
                        response.status,
                        200,
                        "prediction downtime: {}",
                        response.body_str()
                    );
                    served.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            }));
        }

        // Stream the labeled rows through the learn endpoint.
        let mut streamed = 0u64;
        for start in (0..2000).step_by(100) {
            let body = format!(
                "{{\"rows\":{},\"labels\":[{}]}}",
                rows_json(&stream, start..start + 100),
                stream.labels[start..start + 100]
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let response =
                client::request(addr, "POST", "/v1/models/higgs/learn", &[], body.as_bytes())
                    .expect("learn round-trips");
            assert_eq!(response.status, 200, "{}", response.body_str());
            let doc = json::parse(&response.body_str()).unwrap();
            assert_eq!(doc.get("model").and_then(json::Json::as_str), Some("higgs"));
            streamed += doc.get("accepted").and_then(json::Json::as_u64).unwrap();
        }
        learner.drain();

        // Publishes finished before the predictors stop: whatever they
        // serve next is the hot-swapped model.
        stop.store(true, Ordering::Relaxed);
        for p in predictors {
            p.join().expect("predictor thread");
        }
        (served.load(Ordering::Relaxed), streamed)
    });
    assert_eq!(streamed, 2000, "every POSTed row must be accepted");
    assert!(improved > 0, "predictors must actually have run");

    // The stream triggered at least one gated hot-swap, and the served
    // accuracy measurably improved over the weak base.
    let snapshot = learner.metrics();
    assert!(snapshot.publishes >= 1, "{snapshot:?}");
    assert_eq!(snapshot.rows_ingested, 2000, "{snapshot:?}");
    let live = registry.lookup("higgs").expect("model still served");
    assert!(live.version() > 1, "hot-swap must bump the version");

    let final_accuracy = served_accuracy(addr, &eval);
    assert!(
        final_accuracy >= base_accuracy + 0.02,
        "online learning must measurably improve held-out accuracy: \
         base {base_accuracy:.4} -> final {final_accuracy:.4}"
    );

    // The learn families joined the scrape, which stays valid.
    let scrape = client::request(addr, "GET", "/metrics", &[], b"").unwrap();
    assert_eq!(scrape.status, 200);
    let text = scrape.body_str();
    bcpnn_serve::validate_prometheus(&text).expect("scrape with learn families stays valid");
    assert!(text.contains("bcpnn_learn_rows_total{model=\"higgs\"} 2000"));
    assert!(text.contains("bcpnn_learn_publishes_total"));
    assert!(text.contains("bcpnn_learn_shadow_vs_live_accuracy"));

    let _ = std::fs::remove_dir_all(&state_dir);
}
