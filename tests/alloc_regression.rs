//! Allocation regression tests for the zero-allocation inference data
//! plane: a counting global allocator proves that, after warmup, the
//! serving worker's steady-state batch loop — assembly into the reusable
//! batch matrix plus one `predict_proba_into` pass through a persistent
//! [`Workspace`] — performs **zero heap allocations** per batch.
//!
//! Methodology: the allocator counts per *thread* (thread-local counters),
//! so concurrent tests in this binary cannot pollute each other's
//! measurements. The global thread pool is pinned to a single thread
//! (`BCPNN_NUM_THREADS=1`) and models run on the Naive backend with
//! sub-cutoff GEMM shapes, so every kernel executes inline on the
//! measuring thread: what is counted is exactly the data plane, not pool
//! dispatch. CI runs this file explicitly in the release test leg.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Once;

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams, Workspace};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_serve::loadgen::{request_stream, RequestStream};
use bcpnn_serve::BatchExecutor;
use bcpnn_tensor::Matrix;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper that counts alloc/realloc events per thread.
struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// thread-local counter bump, which itself never allocates (const-init TLS
// with a plain `Cell`). `try_with` tolerates TLS teardown.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocation events on the current thread since process start.
fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Count the allocations `f` performs on this thread.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = thread_allocs();
    let result = f();
    (thread_allocs() - before, result)
}

static INIT: Once = Once::new();

/// Pin the global pool to one thread so every parallel helper takes its
/// sequential path on the measuring thread. Must run before first pool use;
/// `Once` serializes it across the test harness's threads.
fn init_single_thread_pool() {
    INIT.call_once(|| {
        std::env::set_var(bcpnn_parallel::NUM_THREADS_ENV, "1");
        assert_eq!(
            bcpnn_parallel::global_pool().num_threads(),
            1,
            "pool must be pinned to one thread before these tests run"
        );
    });
}

/// A small Naive-backend pipeline: every kernel is a plain loop and the SGD
/// readout GEMM stays far under the parallel-dispatch cutoff.
fn tiny_pipeline(seed: u64) -> (Pipeline, RequestStream) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 300,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 64,
            ..Default::default()
        },
    )
    .unwrap();
    (pipeline, request_stream(64, seed))
}

/// Assemble `batch` stream rows into the executor and run one pass.
fn one_batch(
    executor: &mut BatchExecutor,
    pipeline: &Pipeline,
    stream: &RequestStream,
    batch: usize,
) {
    let x = executor.begin(batch, stream.width());
    for r in 0..batch {
        x.row_mut(r).copy_from_slice(stream.row(r % stream.len()));
    }
    let proba = executor.run(pipeline as &dyn Predictor).unwrap();
    assert_eq!(proba.rows(), batch);
}

#[test]
fn steady_state_worker_batch_loop_allocates_nothing() {
    init_single_thread_pool();
    let (pipeline, stream) = tiny_pipeline(70);
    let mut executor = BatchExecutor::new();
    // Warmup: the largest batch shape the loop will see, twice (the first
    // pass grows the buffers, the second proves the shapes are stable).
    one_batch(&mut executor, &pipeline, &stream, 32);
    one_batch(&mut executor, &pipeline, &stream, 32);
    // Steady state: the full assemble → forward cycle, including batches
    // smaller than the high-water mark, must not touch the allocator.
    let (allocs, ()) = count_allocs(|| {
        for round in 0..50 {
            let batch = [32usize, 8, 1, 17][round % 4];
            one_batch(&mut executor, &pipeline, &stream, batch);
        }
    });
    assert_eq!(
        allocs, 0,
        "the steady-state worker batch loop must perform zero heap allocations after warmup"
    );
}

#[test]
fn warmed_predict_proba_into_allocates_nothing() {
    init_single_thread_pool();
    let (pipeline, stream) = tiny_pipeline(71);
    let mut x = Matrix::zeros(16, stream.width());
    for r in 0..16 {
        x.row_mut(r).copy_from_slice(stream.row(r));
    }
    let mut ws = Workspace::new();
    let mut out = Matrix::zeros(0, 0);
    pipeline.predict_proba_into(&x, &mut ws, &mut out).unwrap();
    let warmed = ws.allocated_elems();
    let (allocs, ()) = count_allocs(|| {
        for _ in 0..50 {
            pipeline.predict_proba_into(&x, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(allocs, 0, "warmed predict_proba_into must not allocate");
    assert_eq!(
        ws.allocated_elems(),
        warmed,
        "workspace buffers must be stable in steady state"
    );
    // The allocating twin really does allocate — the counter works.
    let (alloc_path, _) = count_allocs(|| pipeline.predict_proba(&x).unwrap());
    assert!(alloc_path > 0, "sanity: the allocating path is counted");
    // And both paths agree bit-for-bit.
    assert_eq!(out, pipeline.predict_proba(&x).unwrap());
}

#[test]
fn warmed_cascade_forward_allocates_nothing() {
    init_single_thread_pool();
    let (pipeline, stream) = tiny_pipeline(73);
    let quantized =
        bcpnn_lowprec::QuantizedPipeline::quantize(&pipeline, bcpnn_lowprec::QuantPrecision::Int8)
            .unwrap();
    // An interior threshold so the steady-state loop exercises the full
    // route: cheap pass, margin test, gather, f32 sub-batch, scatter.
    let cascade = bcpnn_serve::CascadeModel::new(
        "alloc-regression",
        Box::new(quantized),
        Box::new(pipeline),
        0.6,
    )
    .unwrap();
    let mut x = Matrix::zeros(16, stream.width());
    for r in 0..16 {
        x.row_mut(r).copy_from_slice(stream.row(r));
    }
    let mut ws = Workspace::new();
    let mut out = Matrix::zeros(0, 0);
    // Warmup twice: first pass sizes the workspace (including the cascade
    // gather/scatter scratch), second proves the shapes are stable.
    cascade.predict_proba_into(&x, &mut ws, &mut out).unwrap();
    cascade.predict_proba_into(&x, &mut ws, &mut out).unwrap();
    let warmed = ws.allocated_elems();
    let (allocs, ()) = count_allocs(|| {
        for _ in 0..50 {
            cascade.predict_proba_into(&x, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "the warmed cascade route (cheap tier + escalation) must not allocate"
    );
    assert_eq!(
        ws.allocated_elems(),
        warmed,
        "cascade workspace buffers must be stable in steady state"
    );
    // The counters moved: the cascade really routed, it didn't no-op.
    let stats = cascade.stats();
    assert_eq!(
        stats.cheap_hits() + stats.escalations(),
        52 * x.rows() as u64
    );
}

#[test]
fn request_stream_row_views_allocate_nothing() {
    init_single_thread_pool();
    let stream = request_stream(128, 72);
    let (allocs, total) = count_allocs(|| {
        let mut total = 0.0f32;
        for i in 0..stream.len() {
            total += stream.row(i).iter().sum::<f32>();
        }
        total
    });
    assert_eq!(allocs, 0, "row views must be allocation-free");
    assert!(total.is_finite());
}
