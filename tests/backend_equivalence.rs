//! The naive (reference) and parallel (optimised) backends must produce
//! statistically equivalent models: same architecture, same seeds, same
//! data → the same predictions up to floating-point reduction-order noise.
//! The vectorized backend makes a stronger promise — it preserves the
//! naive backend's accumulation orders exactly, so training with it must
//! be *bit-identical*, not merely close. (The per-kernel bit-exactness
//! tests across ragged shapes live next to the kernels, in
//! `crates/backend/src/vectorized.rs`.)

use bcpnn_backend::BackendKind;
use bcpnn_bench::{build_network, build_trainer, prepare_higgs, BcpnnRunConfig, HiggsDataConfig};
use bcpnn_core::ReadoutKind;

fn run_with_backend(backend: BackendKind) -> (f64, f64) {
    let data = prepare_higgs(&HiggsDataConfig {
        train_per_class: 800,
        test_per_class: 400,
        ..Default::default()
    });
    let cfg = BcpnnRunConfig {
        n_hcu: 2,
        n_mcu: 60,
        receptive_field: 0.30,
        unsupervised_epochs: 2,
        supervised_epochs: 4,
        readout: ReadoutKind::Hybrid,
        backend,
        ..Default::default()
    };
    let mut network = build_network(&cfg, data.encoded_width(), 23);
    build_trainer(&cfg, 23)
        .fit(&mut network, &data.x_train, &data.y_train)
        .expect("training succeeds");
    let eval = network
        .evaluate(&data.x_test, &data.y_test)
        .expect("evaluation succeeds");
    (eval.accuracy, eval.auc)
}

#[test]
fn naive_and_parallel_backends_learn_equivalent_models() {
    let (acc_naive, auc_naive) = run_with_backend(BackendKind::Naive);
    let (acc_par, auc_par) = run_with_backend(BackendKind::Parallel);
    // The two backends perform the same mathematics with different
    // reduction orders, and the training pipeline (shuffling, noise, mask
    // init) is seeded identically, so results must agree closely — well
    // within a percentage point.
    assert!(
        (acc_naive - acc_par).abs() < 0.02,
        "backend accuracy mismatch: naive {acc_naive}, parallel {acc_par}"
    );
    assert!(
        (auc_naive - auc_par).abs() < 0.02,
        "backend AUC mismatch: naive {auc_naive}, parallel {auc_par}"
    );
    // Both backends must also individually beat chance.
    assert!(acc_naive > 0.55 && acc_par > 0.55);
}

#[test]
fn vectorized_backend_learns_a_bit_identical_model_to_naive() {
    let (acc_naive, auc_naive) = run_with_backend(BackendKind::Naive);
    let (acc_vec, auc_vec) = run_with_backend(BackendKind::Vectorized);
    // Not a tolerance check: the vectorized kernels keep the naive
    // per-element accumulation orders (lane splitting only reorders
    // independent output elements), so every trace, weight, and prediction
    // — and therefore the final metrics — must be exactly equal.
    assert_eq!(
        acc_naive.to_bits(),
        acc_vec.to_bits(),
        "vectorized accuracy diverged from naive: {acc_naive} vs {acc_vec}"
    );
    assert_eq!(
        auc_naive.to_bits(),
        auc_vec.to_bits(),
        "vectorized AUC diverged from naive: {auc_naive} vs {auc_vec}"
    );
}

#[test]
fn backend_selection_from_names_matches_the_dispatcher() {
    assert_eq!(BackendKind::parse("naive"), Some(BackendKind::Naive));
    assert_eq!(BackendKind::parse("openmp"), Some(BackendKind::Parallel));
    assert_eq!(BackendKind::parse("simd"), Some(BackendKind::Vectorized));
    assert_eq!(BackendKind::parse("avx"), Some(BackendKind::Vectorized));
    assert_eq!(
        BackendKind::parse("cuda"),
        None,
        "the CUDA backend is hardware we substitute"
    );
    assert_eq!(BackendKind::default().name(), "parallel");
    assert_eq!(BackendKind::Vectorized.name(), "vectorized");
}
