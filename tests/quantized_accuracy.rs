//! The quantized serving path's accuracy contract, enforced by the CI
//! `quantized-accuracy` gate: int8 and bf16 [`QuantizedPipeline`]s must
//! track the f32 pipeline within a stated held-out accuracy delta, and the
//! quantized artifact must serve through the registry/server stack exactly
//! like its in-process self.
//!
//! The delta bound is deliberately tight (3 accuracy points): per-column
//! int8 scaling and bf16 rounding both perturb the log-odds weights far
//! below the decision margins a trained BCPNN produces, so a larger drift
//! means the quantization datapath broke, not that "quantization is lossy".

use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::Dataset;
use bcpnn_lowprec::{QuantPrecision, QuantizedPipeline};
use bcpnn_serve::{BatchConfig, InferenceServer, ModelRegistry, ServedModel};

const ACCURACY_DELTA: f64 = 0.03;

fn train_and_holdout() -> (Pipeline, Dataset) {
    let train = generate(&SyntheticHiggsConfig {
        n_samples: 2000,
        seed: 31,
        ..Default::default()
    });
    // The synthetic generator draws i.i.d. collisions, so a fresh seed is a
    // held-out split by construction.
    let holdout = generate(&SyntheticHiggsConfig {
        n_samples: 800,
        seed: 32,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &train,
        10,
        Network::builder()
            .hidden(4, 8, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Parallel)
            .seed(31),
        TrainingParams {
            unsupervised_epochs: 2,
            supervised_epochs: 3,
            batch_size: 128,
            ..Default::default()
        },
    )
    .expect("training succeeds");
    (pipeline, holdout)
}

fn accuracy(predictor: &dyn Predictor, data: &Dataset) -> f64 {
    let predictions = predictor.predict(&data.features).expect("predict succeeds");
    let hits = predictions
        .iter()
        .zip(&data.labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / data.labels.len() as f64
}

#[test]
fn quantized_accuracy_tracks_f32_within_stated_delta() {
    let (pipeline, holdout) = train_and_holdout();
    let f32_acc = accuracy(&pipeline, &holdout);
    assert!(
        f32_acc > 0.55,
        "f32 reference must beat chance, got {f32_acc}"
    );
    for precision in [QuantPrecision::Int8, QuantPrecision::Bf16] {
        let quantized =
            QuantizedPipeline::quantize(&pipeline, precision).expect("quantization succeeds");
        let q_acc = accuracy(&quantized, &holdout);
        let delta = (f32_acc - q_acc).abs();
        println!("{precision}: f32 {f32_acc:.4} vs quantized {q_acc:.4} (delta {delta:.4})");
        assert!(
            delta <= ACCURACY_DELTA,
            "{precision}: held-out accuracy delta {delta:.4} exceeds {ACCURACY_DELTA}"
        );
    }
}

#[test]
fn quantized_model_serves_identically_through_the_registry() {
    let (pipeline, holdout) = train_and_holdout();
    let quantized = QuantizedPipeline::quantize(&pipeline, QuantPrecision::Int8)
        .expect("quantization succeeds");
    let direct = quantized
        .predict_proba(&holdout.features)
        .expect("direct predict succeeds");

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs-int8", 1, quantized));
    let server = InferenceServer::start(Arc::clone(&registry), BatchConfig::default());
    // Rows are computed independently of how the batcher groups them, so a
    // served prediction must equal the in-process one bit-for-bit.
    for r in (0..holdout.features.rows()).step_by(97) {
        let served = server
            .predict("higgs-int8", holdout.features.row(r).to_vec())
            .expect("served predict succeeds");
        assert_eq!(
            served,
            direct.row(r).to_vec(),
            "served row {r} diverged from in-process prediction"
        );
    }
}
