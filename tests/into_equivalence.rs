//! Bit-exactness of the zero-allocation data plane: every `_into`
//! (caller-provided-buffer) variant must produce results identical — `==`,
//! not approximately equal — to its allocating twin, on both backends,
//! across repeated buffer reuse with changing batch shapes.
//!
//! This is the contract that lets the serving workers and the training
//! loop route through reusable workspaces without any risk of drifting
//! from the reference results.

use bcpnn_backend::BackendKind;
use bcpnn_core::model::{Predictor, Transformer};
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams, Workspace};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::{Dataset, QuantileEncoder};
use bcpnn_serve::BatchExecutor;
use bcpnn_tensor::Matrix;

fn higgs(n: usize, seed: u64) -> Dataset {
    generate(&SyntheticHiggsConfig {
        n_samples: n,
        seed,
        ..Default::default()
    })
}

fn fit_pipeline(backend: BackendKind, seed: u64) -> (Pipeline, Dataset) {
    let data = higgs(300, seed);
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.4)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(backend)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 64,
            ..Default::default()
        },
    )
    .unwrap();
    (pipeline, data)
}

#[test]
fn pipeline_predict_proba_into_is_bit_identical_on_both_backends() {
    for backend in [BackendKind::Naive, BackendKind::Parallel] {
        let (pipeline, data) = fit_pipeline(backend, 60);
        let mut ws = Workspace::new();
        let mut out = Matrix::filled(3, 3, f32::NAN); // stale, wrong shape
                                                      // Shrinking and growing batches through the same buffers.
        for n in [data.n_samples(), 1, 17, data.n_samples()] {
            let x = data.features.select_rows(&(0..n).collect::<Vec<_>>());
            pipeline.predict_proba_into(&x, &mut ws, &mut out).unwrap();
            let direct = pipeline.predict_proba(&x).unwrap();
            assert_eq!(out, direct, "{backend:?} batch of {n}");
        }
    }
}

#[test]
fn network_and_heads_into_variants_are_bit_identical_on_both_backends() {
    for backend in [BackendKind::Naive, BackendKind::Parallel] {
        let (pipeline, data) = fit_pipeline(backend, 61);
        let net = pipeline.network();
        let encoded = pipeline.encode(&data.features).unwrap();
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(0, 0);

        // Network, both head spellings.
        net.predict_proba_into(&encoded, &mut ws, &mut out).unwrap();
        assert_eq!(out, net.predict_proba(&encoded).unwrap(), "{backend:?}");
        for head in [ReadoutKind::Bcpnn, ReadoutKind::Sgd] {
            net.predict_proba_with_into(head, &encoded, &mut ws, &mut out)
                .unwrap();
            assert_eq!(
                out,
                net.predict_proba_with(head, &encoded).unwrap(),
                "{backend:?} {head:?}"
            );
        }

        // Hidden layer.
        net.encode_into(&encoded, &mut out).unwrap();
        assert_eq!(out, net.encode(&encoded).unwrap(), "{backend:?} hidden");
        let hidden = net.encode(&encoded).unwrap();

        // Readout heads directly over hidden activations.
        let bcpnn = net.bcpnn_readout().unwrap();
        bcpnn.predict_proba_into(&hidden, &mut out).unwrap();
        assert_eq!(out, bcpnn.predict_proba(&hidden).unwrap());
        let sgd = net.sgd_readout().unwrap();
        sgd.predict_proba_into(&hidden, &mut out).unwrap();
        assert_eq!(out, sgd.predict_proba(&hidden).unwrap());
    }
}

#[test]
fn transformer_into_variants_are_bit_identical() {
    let data = higgs(200, 62);
    let enc = QuantileEncoder::fit_matrix(&data.features, 10);
    let mut out = Matrix::filled(1, 1, f32::NAN);
    enc.transform_rows_into(&data.features, &mut out);
    assert_eq!(out, enc.transform_rows(&data.features));
    // Through the trait too (the spelling Pipeline stages use).
    Transformer::transform_into(&enc, &data.features, &mut out).unwrap();
    assert_eq!(out, Transformer::transform(&enc, &data.features).unwrap());
}

#[test]
fn batch_executor_matches_direct_inference_on_both_backends() {
    for backend in [BackendKind::Naive, BackendKind::Parallel] {
        let (pipeline, data) = fit_pipeline(backend, 63);
        let direct = pipeline.predict_proba(&data.features).unwrap();
        let mut executor = BatchExecutor::new();
        // Several rounds through the same executor, varying batch size the
        // way a micro-batching worker would.
        for (round, n) in [8usize, 3, 20, 8].into_iter().enumerate() {
            let x = executor.begin(n, data.features.cols());
            for r in 0..n {
                x.row_mut(r).copy_from_slice(data.features.row(r));
            }
            let proba = executor
                .run(&pipeline)
                .unwrap_or_else(|e| panic!("{backend:?} round {round}: {e}"));
            for r in 0..n {
                assert_eq!(
                    proba.row(r),
                    direct.row(r),
                    "{backend:?} round {round} row {r}"
                );
            }
        }
    }
}

#[test]
fn training_through_the_workspace_stays_deterministic() {
    // Two identically-seeded fits must stay bit-reproducible now that the
    // trainer routes every batch through workspace-backed `_with` steps
    // (the per-step equivalence against the allocating twins is unit-tested
    // next to each classifier).
    for backend in [BackendKind::Naive, BackendKind::Parallel] {
        let (a, data) = fit_pipeline(backend, 64);
        let (b, _) = fit_pipeline(backend, 64);
        let pa = a.predict_proba(&data.features).unwrap();
        let pb = b.predict_proba(&data.features).unwrap();
        assert_eq!(pa, pb, "{backend:?}");
    }
}
