//! End-to-end serving test: train → save (stage-tagged v3 artifact) →
//! load into the registry → concurrent batched predictions through the
//! micro-batcher equal direct `predict_proba`, on both backends, across a
//! mid-flight hot-swap, with no dropped or mismatched responses — plus a
//! pre-v3 (`v2`) artifact serving correctly under the v3 code.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bcpnn_backend::BackendKind;
use bcpnn_core::model::Predictor;
use bcpnn_core::{Network, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_serve::{
    BatchConfig, InferenceServer, ModelRegistry, Pipeline, ServeError, ShardConfig, ShardRouting,
    ShardedServer, SubmitOptions,
};
use bcpnn_tensor::Matrix;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 100;

/// Train a tiny Higgs pipeline through the shared `Pipeline::fit` entry
/// point and save it as a (v3) model directory.
fn train_and_save(seed: u64, dir: &std::path::Path) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 500,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(BackendKind::Naive)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(dir);
    pipeline.save(dir).unwrap();
}

/// Rewrite a freshly saved (v3) model directory into the exact layout the
/// pre-v3 (`v2`) writer produced: `v2` manifest header, `encoder quantile`
/// key instead of `stage*` lines, encoder state in `encoder.txt`.
fn downgrade_to_v2(dir: &std::path::Path) {
    let manifest_path = dir.join("manifest.txt");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    let v2_text: String = text
        .lines()
        .filter_map(|line| {
            if line.starts_with("bcpnn-network ") {
                Some("bcpnn-network v2\n".to_string())
            } else if line == "stages 1" {
                Some("encoder quantile\n".to_string())
            } else if line.starts_with("stage0 ") {
                None
            } else {
                Some(format!("{line}\n"))
            }
        })
        .collect();
    std::fs::write(&manifest_path, v2_text).unwrap();
    std::fs::rename(dir.join("stage0.txt"), dir.join("encoder.txt")).unwrap();
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir()
        .join("bcpnn_serve_roundtrip")
        .join(format!("{name}_{}", std::process::id()))
}

/// Raw request stream shared by all clients, as a matrix for direct
/// reference predictions.
fn request_matrix(n: usize) -> Matrix<f32> {
    generate(&SyntheticHiggsConfig {
        n_samples: n,
        seed: 999,
        ..Default::default()
    })
    .features
}

fn rows_match(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
}

fn serve_roundtrip_on(backend: BackendKind) {
    let dir_v1 = temp_dir(&format!("v1_{}", backend.name()));
    let dir_v2 = temp_dir(&format!("v2_{}", backend.name()));
    train_and_save(1, &dir_v1);
    train_and_save(2, &dir_v2);

    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_and_publish("higgs", 1, &dir_v1, backend)
        .unwrap();

    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let requests = request_matrix(total);

    // Direct reference predictions from the *identical* loaded artifacts
    // (same object the server will run, so agreement must be exact up to
    // f32 noise).
    let v1_model = registry.get("higgs").unwrap();
    let direct_v1 = v1_model.predictor().predict_proba(&requests).unwrap();
    let v2_pipeline = Pipeline::load(&dir_v2, backend).unwrap();
    let direct_v2 = v2_pipeline.predict_proba(&requests).unwrap();
    assert!(
        direct_v1.max_abs_diff(&direct_v2) > 1e-3,
        "v1 and v2 must be distinguishable for the swap assertion to mean anything"
    );

    let server = InferenceServer::start(
        Arc::clone(&registry),
        BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            workers: 2,
        },
    );

    let matched_v1 = AtomicU64::new(0);
    let matched_v2 = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let requests = &requests;
            let direct_v1 = &direct_v1;
            let direct_v2 = &direct_v2;
            let matched_v1 = &matched_v1;
            let matched_v2 = &matched_v2;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let row = client * REQUESTS_PER_CLIENT + i;
                    let proba = server
                        .predict("higgs", requests.row(row).to_vec())
                        .expect("no request may be dropped or errored");
                    // Across the hot-swap every response must match one of
                    // the two published versions exactly — never a blend,
                    // never garbage.
                    if rows_match(&proba, direct_v1.row(row), 1e-5) {
                        matched_v1.fetch_add(1, Ordering::Relaxed);
                    } else if rows_match(&proba, direct_v2.row(row), 1e-5) {
                        matched_v2.fetch_add(1, Ordering::Relaxed);
                    } else {
                        panic!(
                            "row {row}: response {proba:?} matches neither v1 {:?} nor v2 {:?}",
                            direct_v1.row(row),
                            direct_v2.row(row)
                        );
                    }
                }
            });
        }
        // Hot-swap to v2 while the clients hammer the server.
        std::thread::sleep(Duration::from_millis(20));
        registry
            .load_and_publish("higgs", 2, &dir_v2, backend)
            .unwrap();
    });

    let v1_hits = matched_v1.load(Ordering::Relaxed);
    let v2_hits = matched_v2.load(Ordering::Relaxed);
    assert_eq!(
        v1_hits + v2_hits,
        total as u64,
        "every request must get a response matching a published version"
    );
    assert_eq!(registry.get("higgs").unwrap().version(), 2);
    assert_eq!(registry.hot_swaps(), 1);

    // After the swap has been observed, new predictions come from v2.
    let post = server.predict("higgs", requests.row(0).to_vec()).unwrap();
    assert!(
        rows_match(&post, direct_v2.row(0), 1e-5),
        "post-swap prediction must come from v2"
    );

    // The scheduler actually batched the concurrent load and measured it.
    let metrics = server.metrics();
    assert_eq!(metrics.requests, total as u64 + 1);
    assert_eq!(metrics.responses, total as u64 + 1);
    assert_eq!(metrics.errors, 0);
    assert!(metrics.batches >= 1);
    assert!(
        metrics.mean_batch_size > 1.0,
        "{CLIENTS} concurrent clients must co-batch (mean batch {})",
        metrics.mean_batch_size
    );
    assert!(metrics.p50_latency_us > 0.0);
    assert!(metrics.p99_latency_us >= metrics.p50_latency_us);
    assert_eq!(metrics.batch_size_hist.iter().sum::<u64>(), metrics.batches);

    drop(server);
    std::fs::remove_dir_all(&dir_v1).ok();
    std::fs::remove_dir_all(&dir_v2).ok();
}

#[test]
fn serve_roundtrip_naive_backend() {
    serve_roundtrip_on(BackendKind::Naive);
}

#[test]
fn serve_roundtrip_parallel_backend() {
    serve_roundtrip_on(BackendKind::Parallel);
}

/// Sharded (4 pools) == single-pool == direct `predict_proba`, before and
/// after a hot-swap, with the mid-flight swap itself crossed under
/// concurrent load: every response matches one of the two published
/// versions exactly, on every shard.
#[test]
fn sharded_equals_single_pool_equals_direct_across_hot_swap() {
    let backend = BackendKind::Parallel;
    let dir_v1 = temp_dir("shard_v1");
    let dir_v2 = temp_dir("shard_v2");
    train_and_save(1, &dir_v1);
    train_and_save(2, &dir_v2);

    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_and_publish("higgs", 1, &dir_v1, backend)
        .unwrap();

    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let requests = request_matrix(total);
    let direct_v1 = registry
        .get("higgs")
        .unwrap()
        .predictor()
        .predict_proba(&requests)
        .unwrap();
    let v2_pipeline = Pipeline::load(&dir_v2, backend).unwrap();
    let direct_v2 = v2_pipeline.predict_proba(&requests).unwrap();

    let batch = BatchConfig {
        max_batch: 16,
        max_wait: Duration::from_millis(1),
        workers: 2,
    };
    let single = InferenceServer::start(Arc::clone(&registry), batch);
    let sharded = ShardedServer::start(
        Arc::clone(&registry),
        ShardConfig {
            shards: 4,
            batch,
            routing: ShardRouting::FeatureHash,
        },
    );
    assert_eq!(sharded.n_shards(), 4);

    // Pre-swap: sharded == single-pool == direct, row-exact.
    for row in 0..32 {
        let features = requests.row(row).to_vec();
        let from_sharded = sharded.predict("higgs", features.clone()).unwrap();
        let from_single = single.predict("higgs", features).unwrap();
        assert!(rows_match(&from_sharded, direct_v1.row(row), 1e-5));
        assert!(rows_match(&from_single, direct_v1.row(row), 1e-5));
        assert!(rows_match(&from_sharded, &from_single, 1e-5));
    }

    // Mid-flight: concurrent clients hammer the sharded server while v2 is
    // hot-swapped in; every response matches v1 or v2 exactly.
    let matched_v1 = AtomicU64::new(0);
    let matched_v2 = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let sharded = &sharded;
            let requests = &requests;
            let direct_v1 = &direct_v1;
            let direct_v2 = &direct_v2;
            let matched_v1 = &matched_v1;
            let matched_v2 = &matched_v2;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let row = client * REQUESTS_PER_CLIENT + i;
                    let proba = sharded
                        .predict("higgs", requests.row(row).to_vec())
                        .expect("no request may be dropped or errored");
                    if rows_match(&proba, direct_v1.row(row), 1e-5) {
                        matched_v1.fetch_add(1, Ordering::Relaxed);
                    } else if rows_match(&proba, direct_v2.row(row), 1e-5) {
                        matched_v2.fetch_add(1, Ordering::Relaxed);
                    } else {
                        panic!("row {row}: response matches neither published version");
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(20));
        registry
            .load_and_publish("higgs", 2, &dir_v2, backend)
            .unwrap();
    });
    assert_eq!(
        matched_v1.load(Ordering::Relaxed) + matched_v2.load(Ordering::Relaxed),
        total as u64
    );

    // Post-swap: both servers now agree with direct v2.
    for row in 0..32 {
        let features = requests.row(row).to_vec();
        assert!(rows_match(
            &sharded.predict("higgs", features.clone()).unwrap(),
            direct_v2.row(row),
            1e-5
        ));
        assert!(rows_match(
            &single.predict("higgs", features).unwrap(),
            direct_v2.row(row),
            1e-5
        ));
    }

    // The shards really shared the load, and the aggregate adds up.
    let per_shard = sharded.shard_metrics();
    let aggregate = sharded.metrics();
    assert_eq!(
        aggregate.responses,
        per_shard.iter().map(|m| m.responses).sum::<u64>()
    );
    assert!(
        per_shard.iter().filter(|m| m.requests > 0).count() > 1,
        "hash routing must use more than one shard"
    );
    assert_eq!(aggregate.errors, 0);

    // The Prometheus view exposes both levels: the aggregate under
    // shard="all" and every individual shard.
    let text = sharded.to_prometheus();
    assert!(text.contains("bcpnn_serve_responses_total{shard=\"all\"}"));
    assert!(text.contains("shard=\"3\""));

    drop(sharded);
    drop(single);
    std::fs::remove_dir_all(&dir_v1).ok();
    std::fs::remove_dir_all(&dir_v2).ok();
}

/// Requests whose deadline has already passed error with
/// `DeadlineExceeded` and are never executed: no responses, no batches, no
/// forward-pass work.
#[test]
fn expired_deadlines_error_without_execution() {
    let dir = temp_dir("deadline");
    train_and_save(3, &dir);
    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_and_publish("higgs", 1, &dir, BackendKind::Naive)
        .unwrap();
    let sharded = ShardedServer::start(Arc::clone(&registry), ShardConfig::new(2));

    let requests = request_matrix(16);
    let handles: Vec<_> = (0..16)
        .map(|row| {
            sharded
                .submit_with_options(
                    "higgs",
                    requests.row(row).to_vec(),
                    SubmitOptions::new().deadline(Duration::ZERO),
                )
                .unwrap()
        })
        .collect();
    for handle in handles {
        assert!(matches!(handle.wait(), Err(ServeError::DeadlineExceeded)));
    }
    let m = sharded.metrics();
    assert_eq!(m.expired, 16);
    assert_eq!(m.errors, 16);
    assert_eq!(m.responses, 0, "expired requests must not be executed");
    assert_eq!(m.batches, 0, "expired requests must not form batches");

    // A request with a generous deadline still round-trips afterwards.
    let proba = sharded
        .submit_with_options(
            "higgs",
            requests.row(0).to_vec(),
            SubmitOptions::new().deadline(Duration::from_secs(30)),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(proba.len(), 2);

    drop(sharded);
    std::fs::remove_dir_all(&dir).ok();
}

/// A `v2` artifact saved before the stage-tagged format existed loads and
/// serves correctly under the `v3` code: same predictions as the original
/// pipeline, through the full micro-batching path.
#[test]
fn v2_artifact_loads_and_serves_under_v3_code() {
    let backend = BackendKind::Naive;
    let dir = temp_dir("v2_artifact");
    train_and_save(7, &dir);

    // Reference predictions from the artifact while it is still v3.
    let requests = request_matrix(64);
    let reference = Pipeline::load(&dir, backend)
        .unwrap()
        .predict_proba(&requests)
        .unwrap();

    // Rewrite the directory into the exact pre-v3 layout, then serve it.
    downgrade_to_v2(&dir);
    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).unwrap();
    assert!(manifest.contains("bcpnn-network v2"));
    assert!(manifest.contains("encoder quantile"));
    assert!(!manifest.contains("stages"));

    let loaded = Pipeline::load(&dir, backend).unwrap();
    assert_eq!(loaded.stages().len(), 1, "v2 encoder becomes one stage");
    assert!(reference.max_abs_diff(&loaded.predict_proba(&requests).unwrap()) < 1e-6);

    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_and_publish("higgs", 1, &dir, backend)
        .unwrap();
    let server = InferenceServer::start(
        Arc::clone(&registry),
        BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            workers: 2,
        },
    );
    let handles: Vec<_> = (0..requests.rows())
        .map(|r| server.submit("higgs", requests.row(r).to_vec()).unwrap())
        .collect();
    for (r, handle) in handles.into_iter().enumerate() {
        let proba = handle.wait().unwrap();
        assert!(
            rows_match(&proba, reference.row(r), 1e-5),
            "row {r}: served response must match the pre-downgrade artifact"
        );
    }
    assert_eq!(server.metrics().errors, 0);

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}
