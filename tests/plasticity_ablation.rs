//! Ablation of the structural-plasticity design choices called out in
//! DESIGN.md: mutual-information-scored rewiring must end up on more
//! informative inputs than a frozen random mask of the same density, and
//! the per-HCU connection budget must be an invariant of training.

use bcpnn_backend::BackendKind;
use bcpnn_core::{HiddenLayerParams, Network, ReadoutKind, Trainer, TrainingParams};
use bcpnn_data::encode::QuantileEncoder;
use bcpnn_data::higgs::{generate, noise_feature_indices, SyntheticHiggsConfig};
use bcpnn_data::split::stratified_split;
use bcpnn_tensor::Matrix;

struct Prepared {
    x_train: Matrix<f32>,
    y_train: Vec<usize>,
    x_test: Matrix<f32>,
    y_test: Vec<usize>,
    n_bins: usize,
}

fn prepare(n: usize, seed: u64) -> Prepared {
    let collisions = generate(&SyntheticHiggsConfig {
        n_samples: n,
        seed,
        ..Default::default()
    });
    let (train, test) = stratified_split(&collisions, 0.3, seed ^ 1);
    let encoder = QuantileEncoder::fit(&train, 10);
    Prepared {
        x_train: encoder.transform(&train),
        y_train: train.labels.clone(),
        x_test: encoder.transform(&test),
        y_test: test.labels.clone(),
        n_bins: encoder.n_bins(),
    }
}

fn train_network(
    data: &Prepared,
    plasticity_swaps: usize,
    density: f64,
    seed: u64,
) -> (f64, Matrix<f32>) {
    let hidden = HiddenLayerParams {
        n_inputs: data.x_train.cols(),
        n_hcu: 1,
        n_mcu: 150,
        receptive_field: density,
        plasticity_swaps,
        ..Default::default()
    };
    let mut network = Network::builder()
        .hidden_params(hidden)
        .classes(2)
        .readout(ReadoutKind::Hybrid)
        .backend(BackendKind::Parallel)
        .seed(seed)
        .build()
        .unwrap();
    Trainer::new(TrainingParams {
        unsupervised_epochs: 4,
        supervised_epochs: 6,
        batch_size: 128,
        seed: seed ^ 0xbeef,
        shuffle: true,
    })
    .fit(&mut network, &data.x_train, &data.y_train)
    .unwrap();
    let acc = network
        .evaluate(&data.x_test, &data.y_test)
        .unwrap()
        .accuracy;
    (acc, network.hidden().receptive_field_snapshot())
}

#[test]
fn mi_scored_rewiring_beats_a_frozen_random_mask_at_low_density() {
    // At a tight connection budget (10%), *where* the HCU looks matters;
    // average over a few seeds to keep the comparison robust.
    let data = prepare(6_000, 3);
    let seeds = [1u64, 2, 3];
    let mut with_plasticity = 0.0;
    let mut frozen_random = 0.0;
    for &s in &seeds {
        with_plasticity += train_network(&data, 8, 0.10, s).0;
        frozen_random += train_network(&data, 0, 0.10, s).0; // 0 swaps = frozen mask
    }
    with_plasticity /= seeds.len() as f64;
    frozen_random /= seeds.len() as f64;
    // The qualitative claim: learning *where* to look never hurts and, on a
    // tight budget, helps. Averaged over seeds we require "at least as good"
    // with a small tolerance; the companion test below checks the stronger,
    // more stable signal that the mask abandons pure-noise features.
    assert!(
        with_plasticity >= frozen_random - 0.005,
        "plasticity ({with_plasticity:.4}) should not lose to a frozen random mask ({frozen_random:.4})"
    );
}

#[test]
fn plasticity_moves_connections_away_from_pure_noise_features() {
    let data = prepare(6_000, 5);
    let n_bins = data.n_bins;
    let density = 0.20;
    let (_, mask) = train_network(&data, 8, density, 7);
    let noise_features = noise_feature_indices();
    // Fraction of active connections sitting on the azimuthal-angle features
    // (pure noise by construction): should be clearly below their share of
    // the input (6/28 ≈ 21%).
    let active: Vec<usize> = mask
        .row(0)
        .iter()
        .enumerate()
        .filter(|(_, &v)| v == 1.0)
        .map(|(i, _)| i)
        .collect();
    let on_noise = active
        .iter()
        .filter(|&&col| noise_features.contains(&(col / n_bins)))
        .count();
    let frac = on_noise as f64 / active.len() as f64;
    let uninformative_share = noise_features.len() as f64 / 28.0;
    assert!(
        frac < uninformative_share * 0.8,
        "plasticity left {frac:.2} of the mask on noise features (uniform would be {uninformative_share:.2})"
    );
}

#[test]
fn connection_budget_is_preserved_through_training() {
    let data = prepare(3_000, 9);
    for density in [0.05, 0.30, 0.75] {
        let (_, mask) = train_network(&data, 8, density, 11);
        let expected = ((data.x_train.cols() as f64 * density).round() as usize).max(1);
        let active = mask.row(0).iter().filter(|&&v| v == 1.0).count();
        assert_eq!(
            active, expected,
            "density {density}: training must not change the number of active connections"
        );
    }
}
