//! Public-API smoke test: the key re-exports of the unified model API
//! resolve and the advertised trait relationships hold. Most assertions
//! here are compile-time — an accidental surface break (a renamed trait, a
//! dropped re-export, a lost `impl`) fails this file fast, before any
//! downstream crate notices.

// The canonical module-path spellings.
use bcpnn_core::model::{Estimator, Pipeline, Predictor, Transformer};
// The crate-root re-exports resolve to the same items.
use bcpnn_core::{NetworkEstimator, PipelineEstimator, Stage};

fn assert_transformer<T: Transformer>() {}
fn assert_predictor<T: Predictor>() {}
fn assert_estimator<E: Estimator>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn key_model_api_reexports_resolve() {
    // Transformers: the bcpnn-data encoders and the Stage chain element.
    assert_transformer::<bcpnn_data::QuantileEncoder>();
    assert_transformer::<bcpnn_data::encode::ThermometerEncoder>();
    assert_transformer::<bcpnn_data::encode::Standardizer>();
    assert_transformer::<Stage>();

    // Predictors: network, both readout heads, and the pipeline artifact.
    assert_predictor::<bcpnn_core::Network>();
    assert_predictor::<bcpnn_core::BcpnnClassifier>();
    assert_predictor::<bcpnn_core::SgdClassifier>();
    assert_predictor::<Pipeline>();

    // Estimators yield their documented fitted types.
    assert_estimator::<NetworkEstimator>();
    assert_estimator::<PipelineEstimator>();
    fn fitted_types(
        n: <NetworkEstimator as Estimator>::Fitted,
        p: <PipelineEstimator as Estimator>::Fitted,
    ) -> (bcpnn_core::Network, Pipeline) {
        (n, p)
    }
    let _ = fitted_types;

    // Predictor is object safe and shareable across threads — the bound
    // the serving subsystem depends on.
    assert_send_sync::<Box<dyn Predictor + Send + Sync>>();

    // bcpnn-serve re-exports the same Pipeline type it serves.
    fn same_pipeline(p: bcpnn_serve::Pipeline) -> Pipeline {
        p
    }
    let _ = same_pipeline;
}

#[test]
fn persistence_entry_points_resolve() {
    // The persistence surface: both the free-function and the method
    // spellings exist and produce the same artifact type.
    let data = bcpnn_data::higgs::generate(&bcpnn_data::higgs::SyntheticHiggsConfig {
        n_samples: 200,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        4,
        bcpnn_core::Network::builder()
            .hidden(1, 3, 0.5)
            .classes(2)
            .backend(bcpnn_backend::BackendKind::Naive),
        bcpnn_core::TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        },
    )
    .unwrap();
    let dir = std::env::temp_dir()
        .join("bcpnn_api_surface")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    bcpnn_core::save_pipeline(&pipeline, &dir).unwrap();
    let via_fn: Pipeline =
        bcpnn_core::load_pipeline(&dir, bcpnn_backend::BackendKind::Naive).unwrap();
    let via_method: Pipeline = Pipeline::load(&dir, bcpnn_backend::BackendKind::Naive).unwrap();
    assert_eq!(via_fn.stages(), via_method.stages());
    std::fs::remove_dir_all(&dir).ok();
}
