//! End-to-end uncertainty round-trip tests: the gateway's HTTP exterior
//! and the cluster's binary interior must carry confidence — entropy,
//! top-2 margin, and the abstention verdict — **bit for bit** against a
//! direct in-process call. The abstention gate compares the same `f32`s
//! on every path (the header's decimal is shortest-round-trip, the wire
//! carries raw bits), so a client can recompute exactly which rows
//! abstained from the model's own probabilities. Malformed
//! `X-Abstain-Below` headers are rejected before a single forward pass
//! on both fronts.

use std::sync::Arc;

use bcpnn_backend::BackendKind;
use bcpnn_cluster::{
    BackendConfig, BackendNode, ClusterConfig, ClusterRouter, RouterHttp, RouterHttpConfig,
};
use bcpnn_core::model::Predictor;
use bcpnn_core::uncertainty::{entropy, margin};
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::Dataset;
use bcpnn_gateway::{client, json, Gateway, GatewayConfig};
use bcpnn_serve::{
    BatchConfig, ModelRegistry, ServeTarget, ServedModel, ShardConfig, ShardedServer,
};
use bcpnn_tensor::Matrix;
use std::time::Duration;

/// Train a tiny synthetic-Higgs pipeline on the given backend.
fn tiny_pipeline(seed: u64, backend: BackendKind) -> (Pipeline, Dataset) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 400,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(backend)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        },
    )
    .expect("tiny pipeline trains");
    (pipeline, data)
}

/// Gateway over a 2-shard server with small batches.
fn gateway_over(registry: Arc<ModelRegistry>) -> (Gateway, Arc<ShardedServer>) {
    let server = Arc::new(ShardedServer::start(
        registry,
        ShardConfig {
            shards: 2,
            batch: BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                workers: 1,
            },
            ..ShardConfig::default()
        },
    ));
    let gateway = Gateway::start(
        Arc::clone(&server) as Arc<dyn ServeTarget>,
        GatewayConfig {
            workers: 4,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway binds an ephemeral port");
    (gateway, server)
}

/// Serialize feature rows the way a JSON client would.
fn rows_body(data: &Dataset, rows: std::ops::Range<usize>) -> String {
    let rows: Vec<String> = rows
        .map(|r| {
            let cells: Vec<String> = data.features.row(r).iter().map(|v| v.to_string()).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// A predict response's parallel per-row arrays, decoded exactly:
/// `None` entries are the abstained rows' JSON `null`s.
struct PredictReply {
    predictions: Vec<Option<Vec<f32>>>,
    uncertainty: Vec<Option<(f32, f32)>>,
    abstained: Vec<bool>,
}

fn num_of(value: Option<&json::Json>, what: &str) -> f32 {
    match value {
        Some(json::Json::Num(n)) => n.as_f32().unwrap_or_else(|| panic!("{what} is not finite")),
        other => panic!("{what} must be a number, got {other:?}"),
    }
}

fn parse_predict(body: &str) -> PredictReply {
    let doc = json::parse(body).expect("response body is valid JSON");
    let array_of = |key: &str| {
        doc.get(key)
            .and_then(json::Json::as_array)
            .unwrap_or_else(|| panic!("response carries an array {key:?}"))
    };
    let predictions = array_of("predictions")
        .iter()
        .map(|row| match row {
            json::Json::Null => None,
            json::Json::Arr(cells) => Some(
                cells
                    .iter()
                    .map(|cell| num_of(Some(cell), "probability"))
                    .collect(),
            ),
            other => panic!("prediction row must be an array or null, got {other:?}"),
        })
        .collect();
    let uncertainty = array_of("uncertainty")
        .iter()
        .map(|row| match row {
            json::Json::Null => None,
            obj @ json::Json::Obj(_) => Some((
                num_of(obj.get("entropy"), "entropy"),
                num_of(obj.get("margin"), "margin"),
            )),
            other => panic!("uncertainty must be an object or null, got {other:?}"),
        })
        .collect();
    let abstained = array_of("abstained")
        .iter()
        .map(|row| match row {
            json::Json::Bool(b) => *b,
            other => panic!("abstained must be a bool, got {other:?}"),
        })
        .collect();
    PredictReply {
        predictions,
        uncertainty,
        abstained,
    }
}

/// The median direct margin over `rows` — a threshold guaranteed to
/// split the holdout into abstained and answered rows.
fn median_margin(direct: &Matrix<f32>, rows: usize) -> f32 {
    let mut margins: Vec<f32> = (0..rows).map(|r| margin(direct.row(r))).collect();
    margins.sort_by(f32::total_cmp);
    margins[rows / 2]
}

/// Assert one front's predict reply against the direct call, row by row:
/// the abstention verdict is exactly `margin < threshold` on the direct
/// probabilities, live rows are bit-identical (probabilities, entropy,
/// margin), abstained rows are `null` throughout.
fn assert_reply_matches_direct(reply: &PredictReply, direct: &Matrix<f32>, threshold: f32) {
    let rows = reply.abstained.len();
    assert_eq!(reply.predictions.len(), rows);
    assert_eq!(reply.uncertainty.len(), rows);
    let mut abstained_rows = 0usize;
    for r in 0..rows {
        let should_abstain = margin(direct.row(r)) < threshold;
        assert_eq!(
            reply.abstained[r], should_abstain,
            "row {r}: the abstention verdict must be recomputable from the direct margins"
        );
        if should_abstain {
            abstained_rows += 1;
            assert!(
                reply.predictions[r].is_none(),
                "row {r}: abstained rows carry a null prediction"
            );
            assert!(
                reply.uncertainty[r].is_none(),
                "row {r}: abstained rows carry null uncertainty"
            );
            continue;
        }
        let proba = reply.predictions[r]
            .as_ref()
            .unwrap_or_else(|| panic!("row {r}: answered rows carry probabilities"));
        assert_eq!(proba.len(), direct.cols());
        for c in 0..direct.cols() {
            assert_eq!(
                proba[c].to_bits(),
                direct.get(r, c).to_bits(),
                "row {r} col {c}: probabilities must be bit-identical"
            );
        }
        let (got_entropy, got_margin) = reply.uncertainty[r]
            .unwrap_or_else(|| panic!("row {r}: answered rows carry uncertainty"));
        assert_eq!(
            got_entropy.to_bits(),
            entropy(direct.row(r)).to_bits(),
            "row {r}: entropy must be bit-identical to the shared kernel"
        );
        assert_eq!(
            got_margin.to_bits(),
            margin(direct.row(r)).to_bits(),
            "row {r}: margin must be bit-identical to the shared kernel"
        );
    }
    assert!(
        abstained_rows > 0 && abstained_rows < rows,
        "the median threshold must split the holdout, abstained {abstained_rows}/{rows}"
    );
}

/// Header values that must be rejected with a 400 naming the header —
/// non-numeric, non-finite, and out-of-range thresholds.
const BAD_THRESHOLDS: [&str; 8] = ["abc", "NaN", "inf", "-inf", "1.5", "-0.1", "", "0.2.3"];

#[test]
fn gateway_uncertainty_and_abstention_match_direct_bitwise() {
    const ROWS: usize = 20;
    let (pipeline, data) = tiny_pipeline(80, BackendKind::Naive);
    let direct = pipeline.predict_proba(&data.features).unwrap();
    let threshold = median_margin(&direct, ROWS);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, pipeline));
    let (gateway, _server) = gateway_over(registry);

    // With a threshold: the verdict, the survivors' probabilities, and
    // the uncertainty numbers all match the direct call bit for bit. The
    // header carries the threshold as a shortest-round-trip decimal, so
    // the gateway compares the very same f32 this test does.
    let response = client::request(
        gateway.local_addr(),
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Abstain-Below", &threshold.to_string())],
        rows_body(&data, 0..ROWS).as_bytes(),
    )
    .expect("predict request round-trips");
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    assert_reply_matches_direct(&parse_predict(&response.body_str()), &direct, threshold);

    // Without the header nothing abstains, and uncertainty still rides
    // along bit-exactly for every row.
    let response = client::request(
        gateway.local_addr(),
        "POST",
        "/v1/models/higgs/predict",
        &[],
        rows_body(&data, 0..ROWS).as_bytes(),
    )
    .unwrap();
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    let reply = parse_predict(&response.body_str());
    assert_eq!(reply.abstained, vec![false; ROWS]);
    for r in 0..ROWS {
        let (got_entropy, got_margin) = reply.uncertainty[r].expect("live rows carry uncertainty");
        assert_eq!(got_entropy.to_bits(), entropy(direct.row(r)).to_bits());
        assert_eq!(got_margin.to_bits(), margin(direct.row(r)).to_bits());
    }
}

#[test]
fn gateway_rejects_malformed_abstain_headers_without_a_forward_pass() {
    let (pipeline, data) = tiny_pipeline(81, BackendKind::Naive);
    let registry = Arc::new(ModelRegistry::new());
    registry.publish(ServedModel::new("higgs", 1, pipeline));
    let (gateway, server) = gateway_over(registry);
    let body = rows_body(&data, 0..1);

    for bad in BAD_THRESHOLDS {
        let r = client::request(
            gateway.local_addr(),
            "POST",
            "/v1/models/higgs/predict",
            &[("X-Abstain-Below", bad)],
            body.as_bytes(),
        )
        .unwrap();
        assert_eq!(r.status, 400, "threshold {bad:?}: {}", r.body_str());
        assert!(
            r.body_str().contains("X-Abstain-Below"),
            "threshold {bad:?}: the error must name the header, got {}",
            r.body_str()
        );
    }
    let m = server.metrics();
    assert_eq!(
        m.requests, 0,
        "a malformed threshold must never reach the serving stack"
    );
    assert_eq!(m.responses, 0);
}

/// A one-off cluster: one router HTTP front over backends that each load
/// the same persisted artifact (bit-identical replicas).
struct TestCluster {
    _nodes: Vec<BackendNode>,
    _router: Arc<ClusterRouter>,
    front: RouterHttp,
    artifact_root: std::path::PathBuf,
}

impl TestCluster {
    fn start(tag: &str, pipeline: &Pipeline, kind: BackendKind, n_backends: usize) -> TestCluster {
        let artifact_root = std::env::temp_dir().join(format!(
            "bcpnn-uncertainty-roundtrip-{tag}-{}",
            std::process::id()
        ));
        let v1_dir = artifact_root.join("model-v1");
        pipeline.save(&v1_dir).expect("v1 artifact saves");

        let mut nodes = Vec::with_capacity(n_backends);
        for _ in 0..n_backends {
            let registry = Arc::new(ModelRegistry::new());
            let replica = Pipeline::load(&v1_dir, kind).expect("v1 artifact loads");
            registry.publish(ServedModel::new("higgs", 1, replica));
            let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(2)));
            let node = BackendNode::start(
                server as Arc<dyn ServeTarget>,
                BackendConfig {
                    artifact_root: Some(artifact_root.clone()),
                    ..BackendConfig::default()
                },
            )
            .expect("backend node binds");
            nodes.push(node);
        }

        let router = Arc::new(ClusterRouter::start(ClusterConfig {
            backends: nodes.iter().map(BackendNode::local_addr).collect(),
            ..ClusterConfig::default()
        }));
        let front = RouterHttp::start(Arc::clone(&router), RouterHttpConfig::default())
            .expect("router HTTP front binds");
        TestCluster {
            _nodes: nodes,
            _router: router,
            front,
            artifact_root,
        }
    }

    fn addr(&self) -> std::net::SocketAddr {
        self.front.local_addr()
    }
}

impl Drop for TestCluster {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.artifact_root);
    }
}

#[test]
fn cluster_front_carries_uncertainty_and_abstention_bitwise() {
    const ROWS: usize = 20;
    let (pipeline, data) = tiny_pipeline(82, BackendKind::Naive);
    let direct = pipeline.predict_proba(&data.features).unwrap();
    let threshold = median_margin(&direct, ROWS);
    let cluster = TestCluster::start("uncert", &pipeline, BackendKind::Naive, 2);

    // Same contract as the single-node gateway, but the threshold now
    // travels the binary interior protocol as a raw f32 and the verdict
    // comes back as in-band abstained row indices: the JSON a client
    // sees is indistinguishable from the gateway's, bit for bit.
    let response = client::request(
        cluster.addr(),
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Abstain-Below", &threshold.to_string())],
        rows_body(&data, 0..ROWS).as_bytes(),
    )
    .expect("predict request round-trips");
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    assert_reply_matches_direct(&parse_predict(&response.body_str()), &direct, threshold);

    // Without the header nothing abstains and uncertainty is bit-exact —
    // entropy/margin recomputed from the wire's raw f32 rows.
    let response = client::request(
        cluster.addr(),
        "POST",
        "/v1/models/higgs/predict",
        &[],
        rows_body(&data, 0..ROWS).as_bytes(),
    )
    .unwrap();
    assert_eq!(response.status, 200, "body: {}", response.body_str());
    let reply = parse_predict(&response.body_str());
    assert_eq!(reply.abstained, vec![false; ROWS]);
    for r in 0..ROWS {
        let (got_entropy, got_margin) = reply.uncertainty[r].expect("live rows carry uncertainty");
        assert_eq!(got_entropy.to_bits(), entropy(direct.row(r)).to_bits());
        assert_eq!(got_margin.to_bits(), margin(direct.row(r)).to_bits());
    }

    // The cluster front rejects malformed thresholds with the same table
    // as the gateway — a 400 naming the header, never a fan-out.
    for bad in BAD_THRESHOLDS {
        let r = client::request(
            cluster.addr(),
            "POST",
            "/v1/models/higgs/predict",
            &[("X-Abstain-Below", bad)],
            rows_body(&data, 0..1).as_bytes(),
        )
        .unwrap();
        assert_eq!(r.status, 400, "threshold {bad:?}: {}", r.body_str());
        assert!(
            r.body_str().contains("X-Abstain-Below"),
            "threshold {bad:?}: the error must name the header, got {}",
            r.body_str()
        );
    }
}
