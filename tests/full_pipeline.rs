//! End-to-end integration test of the full Higgs pipeline: synthetic data →
//! balanced subset → quantile one-hot encoding → BCPNN training → evaluation
//! → persistence, across crate boundaries.

use bcpnn_backend::BackendKind;
use bcpnn_bench::{prepare_higgs, run_bcpnn, BcpnnRunConfig, HiggsDataConfig};
use bcpnn_core::{load_network, save_network, ReadoutKind};

fn small_data() -> bcpnn_bench::HiggsExperimentData {
    prepare_higgs(&HiggsDataConfig {
        train_per_class: 1200,
        test_per_class: 600,
        ..Default::default()
    })
}

#[test]
fn pipeline_reaches_the_paper_accuracy_band() {
    let data = small_data();
    let cfg = BcpnnRunConfig {
        n_hcu: 1,
        n_mcu: 300,
        receptive_field: 0.40,
        ..Default::default()
    };
    let outcome = run_bcpnn(&cfg, &data, 7);
    // The paper's BCPNN configurations sit in the 60–75% accuracy band with
    // AUC around 0.75. The synthetic data is calibrated to land there, so a
    // healthy pipeline must clear 0.58 accuracy / 0.62 AUC even at this
    // reduced training size, and must stay below the ~0.9 that would signal
    // a data-leakage style bug.
    assert!(
        outcome.primary.accuracy > 0.58 && outcome.primary.accuracy < 0.90,
        "hybrid accuracy {} outside the plausible band",
        outcome.primary.accuracy
    );
    assert!(outcome.primary.auc > 0.62, "AUC {}", outcome.primary.auc);
    let bcpnn = outcome
        .bcpnn
        .expect("hybrid trains the associative head too");
    assert!(
        bcpnn.accuracy > 0.58,
        "BCPNN head accuracy {}",
        bcpnn.accuracy
    );
    assert!(outcome.train_time_s > 0.0);
}

#[test]
fn both_heads_agree_with_each_other_within_a_few_points() {
    let data = small_data();
    let cfg = BcpnnRunConfig {
        n_hcu: 1,
        n_mcu: 200,
        receptive_field: 0.40,
        ..Default::default()
    };
    let outcome = run_bcpnn(&cfg, &data, 11);
    let bcpnn = outcome.bcpnn.expect("hybrid trains both heads");
    let gap = (outcome.primary.accuracy - bcpnn.accuracy).abs();
    assert!(
        gap < 0.08,
        "the SGD head and the associative readout should be within a few points (gap {gap})"
    );
}

#[test]
fn unsupervised_features_carry_class_information() {
    // Train with *only* unsupervised epochs and a readout trained on top of
    // frozen features; the readout alone should still beat chance, which is
    // the core claim behind BCPNN as an unsupervised feature learner.
    let data = small_data();
    let cfg = BcpnnRunConfig {
        n_hcu: 2,
        n_mcu: 100,
        receptive_field: 0.30,
        unsupervised_epochs: 3,
        supervised_epochs: 4,
        readout: ReadoutKind::Sgd,
        ..Default::default()
    };
    let outcome = run_bcpnn(&cfg, &data, 13);
    assert!(
        outcome.primary.accuracy > 0.58,
        "SGD on unsupervised BCPNN features should beat chance, got {}",
        outcome.primary.accuracy
    );
}

#[test]
fn trained_model_survives_a_save_load_roundtrip_across_backends() {
    let data = small_data();
    let cfg = BcpnnRunConfig {
        n_hcu: 1,
        n_mcu: 100,
        receptive_field: 0.40,
        ..Default::default()
    };
    let mut network = bcpnn_bench::build_network(&cfg, data.encoded_width(), 17);
    bcpnn_bench::build_trainer(&cfg, 17)
        .fit(&mut network, &data.x_train, &data.y_train)
        .expect("training succeeds");
    let before = network.evaluate(&data.x_test, &data.y_test).unwrap();

    let dir = std::env::temp_dir().join(format!("bcpnn_pipeline_persist_{}", std::process::id()));
    save_network(&network, &dir).expect("saving succeeds");
    // Reloading on the *same* backend reproduces the evaluation exactly.
    let same_backend = load_network(&dir, BackendKind::Parallel).expect("loading succeeds");
    let same = same_backend.evaluate(&data.x_test, &data.y_test).unwrap();
    assert!(
        (before.accuracy - same.accuracy).abs() < 1e-9,
        "persisted model must reproduce its accuracy exactly on the same backend ({} vs {})",
        before.accuracy,
        same.accuracy
    );
    // Reloading on the naive backend changes only floating-point reduction
    // order, so borderline samples may flip: the evaluation must agree to
    // within a fraction of a point.
    let loaded = load_network(&dir, BackendKind::Naive).expect("loading succeeds");
    let after = loaded.evaluate(&data.x_test, &data.y_test).unwrap();
    assert!(
        (before.accuracy - after.accuracy).abs() < 0.01,
        "cross-backend reload drifted too far ({} vs {})",
        before.accuracy,
        after.accuracy
    );
    assert!((before.auc - after.auc).abs() < 0.01);
    std::fs::remove_dir_all(&dir).ok();
}
