//! End-to-end cluster tests over real sockets: HTTP predict through the
//! router (JSON exterior → binary interior → replica fan-out) must equal
//! direct in-process `Pipeline::predict_proba` **bit for bit** on both
//! compute backends; a cluster-wide hot-swap issued mid-flight must
//! converge every replica with per-node outcomes reported; and hard-killing
//! one of two replicas under load must lose zero requests for a replicated
//! model while an unreplicated model on the killed node fails with a clean
//! 502.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bcpnn_backend::BackendKind;
use bcpnn_cluster::{
    BackendConfig, BackendNode, ClusterConfig, ClusterRouter, RouterHttp, RouterHttpConfig,
};
use bcpnn_core::model::Predictor;
use bcpnn_core::{Network, Pipeline, ReadoutKind, TrainingParams};
use bcpnn_data::higgs::{generate, SyntheticHiggsConfig};
use bcpnn_data::Dataset;
use bcpnn_gateway::{client, json};
use bcpnn_serve::{ModelRegistry, ServeTarget, ServedModel, ShardConfig, ShardedServer};

/// Train a tiny synthetic-Higgs pipeline on the given backend.
fn tiny_pipeline(seed: u64, backend: BackendKind) -> (Pipeline, Dataset) {
    let data = generate(&SyntheticHiggsConfig {
        n_samples: 400,
        seed,
        ..Default::default()
    });
    let (pipeline, _) = Pipeline::fit(
        &data,
        10,
        Network::builder()
            .hidden(2, 4, 0.3)
            .classes(2)
            .readout(ReadoutKind::Hybrid)
            .backend(backend)
            .seed(seed),
        TrainingParams {
            unsupervised_epochs: 1,
            supervised_epochs: 1,
            batch_size: 50,
            ..Default::default()
        },
    )
    .expect("tiny pipeline trains");
    (pipeline, data)
}

/// A running test cluster. Backends are `Option` so a test can hard-kill
/// one (drop severs its live connections) while the tier keeps serving.
struct TestCluster {
    nodes: Vec<Option<BackendNode>>,
    router: Arc<ClusterRouter>,
    front: RouterHttp,
    artifact_root: std::path::PathBuf,
}

impl TestCluster {
    /// Save `pipeline` once, then start `n_backends` nodes that each load
    /// the artifact (so every replica holds bit-identical model state)
    /// and publish it under every name in `names`, fronted by a router.
    fn start(
        tag: &str,
        pipeline: &Pipeline,
        kind: BackendKind,
        names: &[&str],
        n_backends: usize,
        config: ClusterConfig,
    ) -> TestCluster {
        let artifact_root = std::env::temp_dir().join(format!(
            "bcpnn-cluster-roundtrip-{tag}-{}",
            std::process::id()
        ));
        let v1_dir = artifact_root.join("model-v1");
        pipeline.save(&v1_dir).expect("v1 artifact saves");

        let mut nodes = Vec::with_capacity(n_backends);
        for _ in 0..n_backends {
            let registry = Arc::new(ModelRegistry::new());
            for name in names {
                let replica = Pipeline::load(&v1_dir, kind).expect("v1 artifact loads");
                registry.publish(ServedModel::new(*name, 1, replica));
            }
            let server = Arc::new(ShardedServer::start(registry, ShardConfig::new(2)));
            let node = BackendNode::start(
                server as Arc<dyn ServeTarget>,
                BackendConfig {
                    artifact_root: Some(artifact_root.clone()),
                    ..BackendConfig::default()
                },
            )
            .expect("backend node binds");
            nodes.push(Some(node));
        }

        let router = Arc::new(ClusterRouter::start(ClusterConfig {
            backends: nodes
                .iter()
                .map(|n| n.as_ref().unwrap().local_addr())
                .collect(),
            ..config
        }));
        let front = RouterHttp::start(Arc::clone(&router), RouterHttpConfig::default())
            .expect("router HTTP front binds");
        TestCluster {
            nodes,
            router,
            front,
            artifact_root,
        }
    }

    fn addr(&self) -> std::net::SocketAddr {
        self.front.local_addr()
    }

    /// Hard-kill one backend: dropping the node severs its listener and
    /// every in-flight connection mid-byte.
    fn kill(&mut self, backend: usize) {
        self.nodes[backend] = None;
    }
}

impl Drop for TestCluster {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.artifact_root);
    }
}

/// Serialize feature rows the way a JSON client would.
fn rows_body(data: &Dataset, rows: std::ops::Range<usize>) -> String {
    let rows: Vec<String> = rows
        .map(|r| {
            let cells: Vec<String> = data.features.row(r).iter().map(|v| v.to_string()).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// Pull `predictions` out of a predict response as exact `f32`s.
fn predictions_of(body: &str) -> Vec<Vec<f32>> {
    let doc = json::parse(body).expect("response body is valid JSON");
    doc.get("predictions")
        .and_then(json::Json::as_array)
        .expect("response carries predictions")
        .iter()
        .map(|row| {
            row.as_array()
                .expect("prediction row is an array")
                .iter()
                .map(|cell| match cell {
                    json::Json::Num(n) => n.as_f32().expect("finite probability"),
                    other => panic!("non-numeric probability {other:?}"),
                })
                .collect()
        })
        .collect()
}

fn assert_cluster_matches_direct(kind: BackendKind, tag: &str) {
    let (pipeline, data) = tiny_pipeline(70, kind);
    let direct = pipeline
        .predict_proba(&data.features)
        .expect("direct inference succeeds");
    let cluster = TestCluster::start(
        tag,
        &pipeline,
        kind,
        &["higgs"],
        2,
        ClusterConfig::default(),
    );

    // 30 rows across several request shapes: every probability must be
    // the exact bits the in-process call produces, no matter which
    // replica answers or how the interior frame batches the rows.
    for chunk in [0..10usize, 10..13, 13..30] {
        let body = rows_body(&data, chunk.clone());
        let response = client::request(
            cluster.addr(),
            "POST",
            "/v1/models/higgs/predict",
            &[],
            body.as_bytes(),
        )
        .expect("predict request round-trips");
        assert_eq!(response.status, 200, "body: {}", response.body_str());
        let got = predictions_of(&response.body_str());
        assert_eq!(got.len(), chunk.len());
        for (i, r) in chunk.enumerate() {
            assert_eq!(got[i].len(), 2);
            for c in 0..2 {
                assert_eq!(
                    got[i][c].to_bits(),
                    direct.get(r, c).to_bits(),
                    "row {r} col {c}: cluster {} vs direct {} must be bit-identical",
                    got[i][c],
                    direct.get(r, c)
                );
            }
        }
    }

    // An already-expired client deadline is answered 504 by the tier —
    // the backend reports it as a typed error, the router refuses to
    // burn the budget on a failover.
    let r = client::request(
        cluster.addr(),
        "POST",
        "/v1/models/higgs/predict",
        &[("X-Deadline-Ms", "0")],
        rows_body(&data, 0..1).as_bytes(),
    )
    .unwrap();
    assert_eq!(r.status, 504, "body: {}", r.body_str());
}

#[test]
fn cluster_predict_matches_direct_bitwise_naive() {
    assert_cluster_matches_direct(BackendKind::Naive, "naive");
}

#[test]
fn cluster_predict_matches_direct_bitwise_parallel() {
    assert_cluster_matches_direct(BackendKind::Parallel, "parallel");
}

#[test]
fn cluster_wide_hot_swap_converges_every_replica_mid_flight() {
    let kind = BackendKind::Naive;
    let (v1, data) = tiny_pipeline(71, kind);
    let (v2, _) = tiny_pipeline(72, kind);
    let direct_v1 = v1.predict_proba(&data.features).unwrap();
    let direct_v2 = v2.predict_proba(&data.features).unwrap();

    let cluster = TestCluster::start("swap", &v1, kind, &["higgs"], 2, ClusterConfig::default());
    let addr = cluster.addr();
    let v2_dir = cluster.artifact_root.join("model-v2");
    v2.save(&v2_dir).expect("v2 artifact saves");

    // Hammer single-row predictions while the cluster-wide swap lands:
    // every response must be entirely v1 bits or entirely v2 bits —
    // never a mixture, never an error — even though the two replicas
    // swap at slightly different instants.
    let stop = Arc::new(AtomicBool::new(false));
    let saw_v2 = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for t in 0..3usize {
            let stop = Arc::clone(&stop);
            let data = &data;
            let direct_v1 = &direct_v1;
            let direct_v2 = &direct_v2;
            clients.push(scope.spawn(move || {
                let mut swapped_seen = false;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let r = i % 40;
                    let body = rows_body(data, r..r + 1);
                    let response = client::request(
                        addr,
                        "POST",
                        "/v1/models/higgs/predict",
                        &[],
                        body.as_bytes(),
                    )
                    .expect("predict keeps working through the swap");
                    assert_eq!(response.status, 200, "{}", response.body_str());
                    let got = predictions_of(&response.body_str());
                    let is_v1 =
                        (0..2).all(|c| got[0][c].to_bits() == direct_v1.get(r, c).to_bits());
                    let is_v2 =
                        (0..2).all(|c| got[0][c].to_bits() == direct_v2.get(r, c).to_bits());
                    assert!(
                        is_v1 || is_v2,
                        "row {r}: prediction matches neither version exactly"
                    );
                    swapped_seen |= is_v2;
                    i += 1;
                }
                swapped_seen
            }));
        }

        std::thread::sleep(Duration::from_millis(50));
        let swap_body = format!(
            "{{\"path\":\"{}\",\"version\":2,\"backend\":\"naive\"}}",
            v2_dir.display()
        );
        let swap = client::request(addr, "PUT", "/v1/models/higgs", &[], swap_body.as_bytes())
            .expect("swap request round-trips");
        assert_eq!(swap.status, 200, "{}", swap.body_str());
        // Per-node outcomes: both replicas swapped, each displacing v1.
        let doc = json::parse(&swap.body_str()).unwrap();
        let results = doc.get("results").and_then(json::Json::as_array).unwrap();
        assert_eq!(results.len(), 2, "replication 2 → two node outcomes");
        for outcome in results {
            assert!(matches!(outcome.get("ok"), Some(json::Json::Bool(true))));
            assert_eq!(
                outcome.get("version").and_then(json::Json::as_u64),
                Some(2),
                "outcome: {}",
                swap.body_str()
            );
            assert_eq!(
                outcome
                    .get("displaced_version")
                    .and_then(json::Json::as_u64),
                Some(1)
            );
        }

        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect::<Vec<bool>>()
    });
    assert!(
        saw_v2.iter().any(|&saw| saw),
        "at least one client must observe post-swap predictions"
    );

    // After convergence every replica answers with exactly v2's bits, so
    // repeated predicts are v2 regardless of which node is asked.
    for _ in 0..6 {
        let response = client::request(
            addr,
            "POST",
            "/v1/models/higgs/predict",
            &[],
            rows_body(&data, 0..5).as_bytes(),
        )
        .unwrap();
        assert_eq!(response.status, 200);
        let got = predictions_of(&response.body_str());
        for r in 0..5 {
            for c in 0..2 {
                assert_eq!(got[r][c].to_bits(), direct_v2.get(r, c).to_bits());
            }
        }
    }
    let listing = client::request(addr, "GET", "/v1/models", &[], b"").unwrap();
    assert!(listing.body_str().contains("\"version\":2"));
}

#[test]
fn killing_one_of_two_replicas_loses_no_requests() {
    let kind = BackendKind::Naive;
    let (pipeline, data) = tiny_pipeline(73, kind);
    let direct = pipeline.predict_proba(&data.features).unwrap();

    // "higgs" rides the default replication of 2 (both backends);
    // "solo" is pinned to a single replica via an override.
    let mut cluster = TestCluster::start(
        "kill",
        &pipeline,
        kind,
        &["higgs", "solo"],
        2,
        ClusterConfig {
            replication_overrides: vec![("solo".to_string(), 1)],
            ..ClusterConfig::default()
        },
    );
    let addr = cluster.addr();
    let victim = cluster.router.replicas_for("solo")[0];
    assert_eq!(cluster.router.replicas_for("higgs").len(), 2);

    // Sanity: the unreplicated model serves while its node is alive.
    let r = client::request(
        addr,
        "POST",
        "/v1/models/solo/predict",
        &[],
        rows_body(&data, 0..1).as_bytes(),
    )
    .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for t in 0..3usize {
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            let data = &data;
            let direct = &direct;
            clients.push(scope.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let r = i % 40;
                    let body = rows_body(data, r..r + 1);
                    let response = client::request(
                        addr,
                        "POST",
                        "/v1/models/higgs/predict",
                        &[],
                        body.as_bytes(),
                    )
                    .expect("the router must keep answering");
                    // THE guarantee under test: with a surviving replica,
                    // not one request fails or drifts from the model's
                    // exact bits while a node dies mid-flight.
                    assert_eq!(response.status, 200, "{}", response.body_str());
                    let got = predictions_of(&response.body_str());
                    for c in 0..2 {
                        assert_eq!(got[0][c].to_bits(), direct.get(r, c).to_bits());
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            }));
        }

        // Let load build, then hard-kill the victim: its listener and
        // every live connection (including ones carrying requests right
        // now) are severed.
        std::thread::sleep(Duration::from_millis(60));
        let before_kill = completed.load(Ordering::Relaxed);
        cluster.kill(victim);
        std::thread::sleep(Duration::from_millis(250));
        stop.store(true, Ordering::Relaxed);
        for c in clients {
            c.join().expect("no client observed a failed request");
        }
        assert!(
            completed.load(Ordering::Relaxed) > before_kill,
            "traffic must keep completing after the kill"
        );
    });

    // The tier noticed: the victim's gauge is down, failovers counted.
    let metrics = client::request(addr, "GET", "/metrics", &[], b"").unwrap();
    let text = metrics.body_str();
    assert!(text.contains(&format!(
        "bcpnn_cluster_backend_up{{backend=\"{victim}\"}} 0"
    )));
    assert!(bcpnn_serve::validate_prometheus(&text).is_ok());

    // The unreplicated model lived only on the dead node: a clean 502,
    // not a hang and not a 500.
    let r = client::request(
        addr,
        "POST",
        "/v1/models/solo/predict",
        &[],
        rows_body(&data, 0..1).as_bytes(),
    )
    .unwrap();
    assert_eq!(r.status, 502, "body: {}", r.body_str());
    assert!(r.body_str().contains("replica"));

    // The replicated model is still bit-exact on the survivor.
    let response = client::request(
        addr,
        "POST",
        "/v1/models/higgs/predict",
        &[],
        rows_body(&data, 0..5).as_bytes(),
    )
    .unwrap();
    assert_eq!(response.status, 200);
    let got = predictions_of(&response.body_str());
    for r in 0..5 {
        for c in 0..2 {
            assert_eq!(got[r][c].to_bits(), direct.get(r, c).to_bits());
        }
    }
}
